//! The `serve` and `load` subcommands, the chaos golden suite, and the
//! serve bench rows.
//!
//! `serve` boots the multi-client TCP server (oracle or concurrent
//! mode), prints `listening on ADDR` once bound, drains gracefully on
//! SIGTERM/SIGINT or a client SHUTDOWN frame, and prints the final
//! verdict JSON — exiting with the ACID exit code if any acknowledged
//! transaction was not durable. `load` runs the chaos-driven load
//! generator against a running server and prints its summary JSON.

use std::time::Duration;

use crate::args::Args;
use crate::commands::config_from_args;
use crate::error::CliError;
use semcluster::serve::{
    run_load, LoadConfig, LoadSummary, ServeConfig, ServeMode, ServeReport, Server,
};
use semcluster_faults::{NetChaosConfig, NetChaosPlan};

/// Committed golden for the network-chaos plans.
pub const CHAOS_GOLDEN_PATH: &str = "goldens/chaos.json";

#[cfg(unix)]
mod sig {
    //! Std-only SIGTERM/SIGINT hook: a C `signal(2)` binding flipping
    //! one atomic flag the serve loop polls. No runtime work happens in
    //! the handler itself.
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the handler; polled by `cmd_serve`.
    pub static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Install the drain-on-signal handlers.
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    /// Whether a drain signal has arrived.
    pub fn stopped() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    //! Non-unix fallback: no signal hook; drain comes from a client
    //! SHUTDOWN frame only.
    pub fn install() {}

    pub fn stopped() -> bool {
        false
    }
}

/// Build a [`ServeConfig`] from flags.
fn serve_config_from_args(args: &Args) -> Result<ServeConfig, CliError> {
    let mode = match args.get("mode").unwrap_or("concurrent") {
        "concurrent" => ServeMode::Concurrent,
        "oracle" => {
            let sim = config_from_args(args).map_err(CliError::general)?;
            ServeMode::Oracle(Box::new(sim))
        }
        other => {
            return Err(CliError::general(format!(
                "serve: unknown mode {other:?} (expected concurrent or oracle)"
            )))
        }
    };
    let defaults = ServeConfig::default();
    Ok(ServeConfig {
        mode,
        workers: args.get_parsed("workers", defaults.workers)?,
        queue_cap: args.get_parsed("queue-cap", defaults.queue_cap)?,
        default_deadline_ms: args.get_parsed("deadline-ms", defaults.default_deadline_ms)?,
        max_inflight_per_conn: args.get_parsed("max-inflight", defaults.max_inflight_per_conn)?,
        group_window_us: args.get_parsed("group-window-us", defaults.group_window_us)?,
        objects: args.get_parsed("objects", defaults.objects)?,
        timeline_interval_ms: if args.get("timeline").is_some() {
            args.get_parsed("timeline-interval-ms", 100u64)?
        } else {
            0
        },
        ..defaults
    })
}

/// `serve` subcommand: bind, announce, drain on signal, report.
pub fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let cfg = serve_config_from_args(args)?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:0").to_string();
    let timeline_path = args.get("timeline").map(str::to_string);
    let handle = Server::start(cfg, &addr).map_err(|e| CliError::from_serve(&e))?;
    // Announce readiness on stdout immediately (CI polls for this).
    println!("listening on {}", handle.addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    sig::install();
    while !handle.shutdown_requested() {
        if sig::stopped() {
            handle.request_shutdown();
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let report = handle.join().map_err(|e| CliError::from_serve(&e))?;
    render_serve_outcome(&report, timeline_path.as_deref())
}

/// Shared verdict rendering for `cmd_serve` and the in-process bench
/// path: write the timeline artifact if requested, emit the verdict
/// JSON, and map ACID violations to their typed exit code.
fn render_serve_outcome(
    report: &ServeReport,
    timeline_path: Option<&str>,
) -> Result<String, CliError> {
    if let Some(path) = timeline_path {
        let timeline = report
            .timeline
            .as_ref()
            .ok_or_else(|| CliError::general("serve: --timeline requires sampling enabled"))?;
        std::fs::write(path, timeline.to_json())
            .map_err(|e| CliError::general(format!("serve: cannot write {path}: {e}")))?;
    }
    let json = report.to_json();
    if report.acid_violations > 0 {
        // Print the report so the violation is diagnosable, then fail
        // with the dedicated exit code: an ack is a durability promise.
        print!("{json}");
        return Err(CliError::acid(format!(
            "serve: {} acked transaction(s) not durable after recovery",
            report.acid_violations
        )));
    }
    Ok(json)
}

/// Build a [`LoadConfig`] from flags.
fn load_config_from_args(args: &Args) -> Result<LoadConfig, CliError> {
    let defaults = LoadConfig::default();
    let chaos = match args.get("chaos") {
        None => NetChaosConfig::none(),
        Some(name) => NetChaosConfig::preset(name).ok_or_else(|| {
            CliError::general(format!(
                "load: unknown chaos preset {name:?} (expected {})",
                NetChaosConfig::PRESETS.join(" or ")
            ))
        })?,
    };
    Ok(LoadConfig {
        addr: args
            .get("addr")
            .ok_or_else(|| CliError::general("load: --addr HOST:PORT is required"))?
            .to_string(),
        connections: args.get_parsed("connections", defaults.connections)?,
        sessions_per_conn: args.get_parsed("sessions", defaults.sessions_per_conn)?,
        txns_per_session: args.get_parsed("txns", defaults.txns_per_session)?,
        ops_per_txn: args.get_parsed("ops", defaults.ops_per_txn)?,
        write_pct: args.get_parsed("write-pct", defaults.write_pct)?,
        objects: args.get_parsed("objects", defaults.objects)?,
        deadline_ms: args.get_parsed("deadline-ms", defaults.deadline_ms)?,
        seed: args.get_parsed("seed", defaults.seed)?,
        chaos,
        pipeline: args.get_parsed("pipeline", defaults.pipeline)?,
        shutdown_after: args.flag("shutdown"),
    })
}

/// `load` subcommand: run the chaos-driven load generator.
pub fn cmd_load(args: &Args) -> Result<String, CliError> {
    let cfg = load_config_from_args(args)?;
    let summary = run_load(&cfg).map_err(|e| CliError::from_serve(&e))?;
    Ok(summary.to_json())
}

/// Render the chaos golden: the full keyed-hash schedule for a grid of
/// (seed, preset) pairs. The plans are pure functions of their inputs —
/// no RNG state, no clocks — so this render is byte-identical at any
/// `--jobs` count and across hosts, which is exactly what the golden
/// pins.
pub fn chaos_golden_render(_jobs: usize) -> Result<String, String> {
    let mut out = String::from("{\"golden_schema\":1,\"suite\":\"chaos\"}\n");
    for preset_name in NetChaosConfig::PRESETS {
        let cfg = NetChaosConfig::preset(preset_name)
            .ok_or_else(|| format!("chaos golden: preset {preset_name:?} vanished"))?;
        for seed in [1989u64, 5417, 88473] {
            let plan = NetChaosPlan::new(seed, cfg);
            out.push_str(&format!(
                "{{\"chaos_plan\":{{\"preset\":{preset_name:?},\"seed\":{seed}}}}}\n"
            ));
            out.push_str(&plan.render_schedule(4, 64));
        }
    }
    Ok(out)
}

/// Serve bench rows: boot an in-process concurrent server on a loopback
/// port, run a fixed fault-free load, and emit one schema-2 row whose
/// report joins with `obs diff` (it carries `mean_response_s`) plus the
/// serving-specific stats (p99 latency, sustained sessions/sec).
pub fn bench_serve_render() -> Result<String, CliError> {
    let cfg = ServeConfig {
        mode: ServeMode::Concurrent,
        workers: 4,
        queue_cap: 256,
        ..ServeConfig::default()
    };
    let handle = Server::start(cfg, "127.0.0.1:0").map_err(|e| CliError::from_serve(&e))?;
    let load = LoadConfig {
        addr: handle.addr().to_string(),
        connections: 4,
        sessions_per_conn: 50,
        txns_per_session: 4,
        chaos: NetChaosConfig::none(),
        pipeline: 16,
        seed: 1989,
        ..LoadConfig::default()
    };
    let summary = run_load(&load).map_err(|e| CliError::from_serve(&e))?;
    handle.request_shutdown();
    let report = handle.join().map_err(|e| CliError::from_serve(&e))?;
    if report.acid_violations > 0 {
        return Err(CliError::acid(format!(
            "bench-report serve: {} ACID violation(s)",
            report.acid_violations
        )));
    }
    Ok(serve_bench_row(&summary, &report))
}

fn serve_bench_row(summary: &LoadSummary, report: &ServeReport) -> String {
    format!(
        concat!(
            "{{\"job\":\"serve-smoke\",\"rep\":0,\"report\":{{",
            "\"mean_response_s\":{:.6},\"p50_ms\":{:.3},\"p99_ms\":{:.3},",
            "\"sessions_per_sec\":{:.2},\"sessions\":{},\"attempted\":{},\"acked\":{},",
            "\"committed\":{},\"sheds\":{},\"deadline_misses\":{},\"retry_exhausted\":{},",
            "\"group_commits\":{},\"group_txns\":{},\"acid_violations\":{}}}}}\n"
        ),
        summary.mean_ms / 1e3,
        summary.p50_ms,
        summary.p99_ms,
        summary.sessions_per_sec,
        summary.sessions,
        summary.attempted,
        summary.acked,
        report.committed,
        report.sheds,
        report.deadline_misses,
        report.retry_exhausted,
        report.group_commits,
        report.group_txns,
        report.acid_violations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn chaos_golden_is_jobs_invariant_and_stable() {
        let a = chaos_golden_render(1).unwrap();
        let b = chaos_golden_render(8).unwrap();
        assert_eq!(a, b, "chaos plans must not depend on thread count");
        assert!(a.starts_with("{\"golden_schema\":1,\"suite\":\"chaos\"}\n"));
        // Both presets and all three seeds appear.
        assert!(a.contains("\"preset\":\"none\""));
        assert!(a.contains("\"preset\":\"chaos\""));
        assert!(a.contains("\"seed\":88473"));
    }

    #[test]
    fn load_flags_parse() {
        let cfg = load_config_from_args(&parse(
            "load --addr 127.0.0.1:9 --connections 2 --sessions 10 --txns 3 \
             --chaos chaos --pipeline 4 --seed 7 --shutdown",
        ))
        .unwrap();
        assert_eq!(cfg.connections, 2);
        assert_eq!(cfg.sessions_per_conn, 10);
        assert_eq!(cfg.txns_per_session, 3);
        assert!(cfg.chaos.enabled());
        assert!(cfg.shutdown_after);
        assert!(
            load_config_from_args(&parse("load")).is_err(),
            "--addr required"
        );
        assert!(load_config_from_args(&parse("load --addr x --chaos nope")).is_err());
    }

    #[test]
    fn serve_flags_parse() {
        let cfg = serve_config_from_args(&parse(
            "serve --workers 2 --queue-cap 32 --deadline-ms 250 --group-window-us 50",
        ))
        .unwrap();
        assert!(matches!(cfg.mode, ServeMode::Concurrent));
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.queue_cap, 32);
        assert_eq!(cfg.default_deadline_ms, 250);
        assert_eq!(cfg.group_window_us, 50);
        assert_eq!(
            cfg.timeline_interval_ms, 0,
            "sampling off without --timeline"
        );
        let cfg = serve_config_from_args(&parse(
            "serve --mode oracle --workload med5-10 --timeline t.json",
        ))
        .unwrap();
        assert!(matches!(cfg.mode, ServeMode::Oracle(_)));
        assert_eq!(cfg.timeline_interval_ms, 100);
        assert!(serve_config_from_args(&parse("serve --mode nope")).is_err());
    }
}
