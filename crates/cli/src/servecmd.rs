//! The `serve` and `load` subcommands, the chaos and stats golden
//! suites, and the serve bench rows.
//!
//! `serve` boots the multi-client TCP server (oracle or concurrent
//! mode), prints `listening on ADDR` once bound (and `metrics on ADDR`
//! when `--metrics-addr` is set), drains gracefully on SIGTERM/SIGINT
//! or a client SHUTDOWN frame, and prints the final verdict JSON —
//! exiting with the ACID exit code if any acknowledged transaction was
//! not durable. `load` runs the chaos-driven load generator against a
//! running server and prints its summary JSON.

use std::net::TcpStream;
use std::time::Duration;

use crate::args::Args;
use crate::commands::config_from_args;
use crate::error::CliError;
use semcluster::serve::{
    read_frame, run_load, write_frame, ErrorKind, LoadConfig, LoadSummary, Request, RequestCounts,
    RequestStamps, Response, ServeConfig, ServeMode, ServeReport, ServeStats, Server, SloTracker,
    TxnOp, TxnRequest,
};
use semcluster::{workload_from_label, SimConfig};
use semcluster_faults::{NetChaosConfig, NetChaosPlan};
use semcluster_obs::{ChromeTraceSink, TraceSink};

/// Committed golden for the network-chaos plans.
pub const CHAOS_GOLDEN_PATH: &str = "goldens/chaos.json";

/// Committed golden for the telemetry renders (synthetic registry
/// replay + a live oracle-mode STATS probe).
pub const STATS_GOLDEN_PATH: &str = "goldens/stats.json";

#[cfg(unix)]
mod sig {
    //! Std-only SIGTERM/SIGINT hook: a C `signal(2)` binding flipping
    //! one atomic flag the serve loop polls. No runtime work happens in
    //! the handler itself.
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the handler; polled by `cmd_serve`.
    pub static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Install the drain-on-signal handlers.
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    /// Whether a drain signal has arrived.
    pub fn stopped() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    //! Non-unix fallback: no signal hook; drain comes from a client
    //! SHUTDOWN frame only.
    pub fn install() {}

    pub fn stopped() -> bool {
        false
    }
}

/// Build a [`ServeConfig`] from flags.
fn serve_config_from_args(args: &Args) -> Result<ServeConfig, CliError> {
    let mode = match args.get("mode").unwrap_or("concurrent") {
        "concurrent" => ServeMode::Concurrent,
        "oracle" => {
            let sim = config_from_args(args).map_err(CliError::general)?;
            ServeMode::Oracle(Box::new(sim))
        }
        other => {
            return Err(CliError::general(format!(
                "serve: unknown mode {other:?} (expected concurrent or oracle)"
            )))
        }
    };
    let defaults = ServeConfig::default();
    Ok(ServeConfig {
        mode,
        workers: args.get_parsed("workers", defaults.workers)?,
        queue_cap: args.get_parsed("queue-cap", defaults.queue_cap)?,
        default_deadline_ms: args.get_parsed("deadline-ms", defaults.default_deadline_ms)?,
        max_inflight_per_conn: args.get_parsed("max-inflight", defaults.max_inflight_per_conn)?,
        group_window_us: args.get_parsed("group-window-us", defaults.group_window_us)?,
        objects: args.get_parsed("objects", defaults.objects)?,
        timeline_interval_ms: if args.get("timeline").is_some() {
            args.get_parsed("timeline-interval-ms", 100u64)?
        } else {
            0
        },
        metrics_addr: args.get("metrics-addr").map(str::to_string),
        slo_window: args.get_parsed("slo-window", defaults.slo_window)?,
        drain_linger_ms: args.get_parsed("drain-linger-ms", defaults.drain_linger_ms)?,
        // --chrome-trace needs per-request attribution records retained;
        // the cap bounds drain-time memory on long-running servers.
        trace_requests: if args.get("chrome-trace").is_some() {
            args.get_parsed("trace-requests", 100_000usize)?
        } else {
            0
        },
        ..defaults
    })
}

/// `serve` subcommand: bind, announce, drain on signal, report.
pub fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let cfg = serve_config_from_args(args)?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:0").to_string();
    let timeline_path = args.get("timeline").map(str::to_string);
    let chrome_path = args.get("chrome-trace").map(str::to_string);
    let handle = Server::start(cfg, &addr).map_err(|e| CliError::from_serve(&e))?;
    // Announce readiness on stdout immediately (CI polls for this).
    println!("listening on {}", handle.addr());
    if let Some(metrics) = handle.metrics_addr() {
        println!("metrics on {metrics}");
    }
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    sig::install();
    while !handle.shutdown_requested() {
        if sig::stopped() {
            handle.request_shutdown();
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let report = handle.join().map_err(|e| CliError::from_serve(&e))?;
    render_serve_outcome(&report, timeline_path.as_deref(), chrome_path.as_deref())
}

/// Shared verdict rendering for `cmd_serve` and the in-process bench
/// path: write the timeline and Chrome-trace artifacts if requested,
/// emit the verdict JSON, and map ACID violations to their typed exit
/// code. The artifacts are written before the ACID check so a failing
/// run still leaves its diagnostics behind.
fn render_serve_outcome(
    report: &ServeReport,
    timeline_path: Option<&str>,
    chrome_path: Option<&str>,
) -> Result<String, CliError> {
    if let Some(path) = timeline_path {
        let timeline = report
            .timeline
            .as_ref()
            .ok_or_else(|| CliError::general("serve: --timeline requires sampling enabled"))?;
        std::fs::write(path, timeline.to_json())
            .map_err(|e| CliError::general(format!("serve: cannot write {path}: {e}")))?;
    }
    if let Some(path) = chrome_path {
        write_serve_chrome_trace(report, path)?;
    }
    let json = report.to_json();
    if report.acid_violations > 0 {
        // Print the report so the violation is diagnosable, then fail
        // with the dedicated exit code: an ack is a durability promise.
        print!("{json}");
        return Err(CliError::acid(format!(
            "serve: {} acked transaction(s) not durable after recovery",
            report.acid_violations
        )));
    }
    Ok(json)
}

/// Write the retained per-request attribution records to a Chrome
/// Trace Event file: each request renders as consecutive `X` slices on
/// the `serve-requests` lane, tiling its service time with zero gaps.
fn write_serve_chrome_trace(report: &ServeReport, path: &str) -> Result<(), CliError> {
    let file = std::fs::File::create(path)
        .map_err(|e| CliError::general(format!("serve: cannot create {path}: {e}")))?;
    let mut sink = ChromeTraceSink::new(std::io::BufWriter::new(file));
    for rec in &report.request_trace {
        sink.emit_serve_request(
            rec.session,
            rec.client_txn,
            rec.start_us,
            &rec.spans.named(),
        );
    }
    sink.flush();
    Ok(())
}

/// Build a [`LoadConfig`] from flags.
fn load_config_from_args(args: &Args) -> Result<LoadConfig, CliError> {
    let defaults = LoadConfig::default();
    let chaos = match args.get("chaos") {
        None => NetChaosConfig::none(),
        Some(name) => NetChaosConfig::preset(name).ok_or_else(|| {
            CliError::general(format!(
                "load: unknown chaos preset {name:?} (expected {})",
                NetChaosConfig::PRESETS.join(" or ")
            ))
        })?,
    };
    Ok(LoadConfig {
        addr: args
            .get("addr")
            .ok_or_else(|| CliError::general("load: --addr HOST:PORT is required"))?
            .to_string(),
        connections: args.get_parsed("connections", defaults.connections)?,
        sessions_per_conn: args.get_parsed("sessions", defaults.sessions_per_conn)?,
        txns_per_session: args.get_parsed("txns", defaults.txns_per_session)?,
        ops_per_txn: args.get_parsed("ops", defaults.ops_per_txn)?,
        write_pct: args.get_parsed("write-pct", defaults.write_pct)?,
        objects: args.get_parsed("objects", defaults.objects)?,
        deadline_ms: args.get_parsed("deadline-ms", defaults.deadline_ms)?,
        seed: args.get_parsed("seed", defaults.seed)?,
        chaos,
        pipeline: args.get_parsed("pipeline", defaults.pipeline)?,
        shutdown_after: args.flag("shutdown"),
    })
}

/// `load` subcommand: run the chaos-driven load generator.
pub fn cmd_load(args: &Args) -> Result<String, CliError> {
    let cfg = load_config_from_args(args)?;
    let summary = run_load(&cfg).map_err(|e| CliError::from_serve(&e))?;
    Ok(summary.to_json())
}

/// Render the chaos golden: the full keyed-hash schedule for a grid of
/// (seed, preset) pairs. The plans are pure functions of their inputs —
/// no RNG state, no clocks — so this render is byte-identical at any
/// `--jobs` count and across hosts, which is exactly what the golden
/// pins.
pub fn chaos_golden_render(_jobs: usize) -> Result<String, String> {
    let mut out = String::from("{\"golden_schema\":1,\"suite\":\"chaos\"}\n");
    for preset_name in NetChaosConfig::PRESETS {
        let cfg = NetChaosConfig::preset(preset_name)
            .ok_or_else(|| format!("chaos golden: preset {preset_name:?} vanished"))?;
        for seed in [1989u64, 5417, 88473] {
            let plan = NetChaosPlan::new(seed, cfg);
            out.push_str(&format!(
                "{{\"chaos_plan\":{{\"preset\":{preset_name:?},\"seed\":{seed}}}}}\n"
            ));
            out.push_str(&plan.render_schedule(4, 64));
        }
    }
    Ok(out)
}

/// Render the stats golden. Two sections, both byte-stable and
/// jobs-invariant:
///
/// * `synthetic` — a fixed replay through the public [`ServeStats`] and
///   [`SloTracker`] APIs (stamps injected, no clocks), pinning the full
///   JSON *and* Prometheus renders byte-for-byte;
/// * `oracle-live` — a real oracle-mode server probed over TCP with a
///   scripted HELLO + 8×TXN + PING + STATS conversation, keeping only
///   the wall-clock-free lines of the STATS reply (schema, counters,
///   gauges). Oracle mode serializes every request through one engine
///   thread, so those lines are exact: 8 TXNs in means 8 `txn_ok` out.
pub fn stats_golden_render(_jobs: usize) -> Result<String, String> {
    let mut out = String::from("{\"golden_schema\":1,\"suite\":\"stats\"}\n");

    out.push_str("{\"section\":\"synthetic\"}\n");
    let stats = ServeStats::new();
    let mut slo = SloTracker::new(3);
    stats.conn_opened();
    stats.bump_sessions(4);
    stats.add_requests(
        &RequestCounts::default(),
        &RequestCounts {
            hello: 1,
            txn: 6,
            report: 1,
            stats: 2,
            ping: 3,
            bye: 1,
            shutdown: 0,
        },
    );
    for i in 0..6u64 {
        let t0 = i * 1_000;
        stats.record_request_latency(&RequestStamps {
            submitted_us: t0,
            dequeued_us: t0 + 40 + i,
            locked_us: t0 + 47 + i,
            executed_us: t0 + 247 + 11 * i,
            committed_us: t0 + 547 + 11 * i,
            replied_us: t0 + 559 + 11 * i,
        });
        stats.record_txn_ok();
        if i % 2 == 0 {
            stats.record_commit();
        }
        // Mid-replay observations exercise the tracker's delta logic;
        // the window of 3 forces the first tick to age out.
        if i == 1 || i == 3 {
            slo.observe(&stats.snapshot(100 * i, false));
        }
    }
    stats.record_ack();
    stats.record_error(ErrorKind::Overloaded);
    stats.record_error(ErrorKind::DeadlineExceeded);
    stats.record_group_flush(6, 2);
    stats.queue_enter();
    stats.queue_enter();
    stats.queue_leave();
    stats.set_admission_shedding(true);
    let mut snap = stats.snapshot(777, false);
    slo.observe(&snap);
    slo.observe(&snap);
    snap.slo = Some(slo.summary());
    out.push_str(&snap.to_json());
    out.push_str("{\"section\":\"prometheus\"}\n");
    out.push_str(&snap.to_prometheus());

    out.push_str("{\"section\":\"oracle-live\"}\n");
    let sim = SimConfig {
        workload: workload_from_label("low3-5").ok_or("stats golden: unknown workload label")?,
        database_bytes: 2 * 1024 * 1024,
        buffer_pages: 24,
        warmup_txns: 40,
        measured_txns: 120,
        seed: 1989,
        ..SimConfig::default()
    };
    let handle = Server::start(
        ServeConfig {
            mode: ServeMode::Oracle(Box::new(sim)),
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .map_err(|e| format!("stats golden: start server: {e}"))?;
    let probe = stats_probe(handle.addr());
    handle.request_shutdown();
    handle
        .join()
        .map_err(|e| format!("stats golden: drain: {e}"))?;
    let json = probe?;
    for line in json.lines() {
        if line.starts_with("{\"stats_schema\"")
            || line.starts_with("\"counters\":")
            || line.starts_with("\"gauges\":")
        {
            out.push_str(line);
            out.push('\n');
        }
    }
    Ok(out)
}

/// Scripted client conversation behind the `oracle-live` golden
/// section: HELLO(1), eight TXNs, PING, then STATS; returns the STATS
/// reply's JSON body.
fn stats_probe(addr: std::net::SocketAddr) -> Result<String, String> {
    let io = |e: std::io::Error| format!("stats golden: probe I/O: {e}");
    let mut stream = TcpStream::connect(addr).map_err(io)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(io)?;
    let mut ask = |req: &Request| -> Result<Response, String> {
        write_frame(&mut stream, &req.encode()).map_err(io)?;
        let frame = read_frame(&mut stream)
            .map_err(io)?
            .ok_or("stats golden: server closed mid-probe")?;
        Response::parse(&frame).map_err(|e| format!("stats golden: bad reply: {e}"))
    };
    let session = match ask(&Request::Hello { sessions: 1 })? {
        Response::HelloOk { first_session } => first_session,
        other => return Err(format!("stats golden: expected HelloOk, got {other:?}")),
    };
    for i in 0..8u64 {
        match ask(&Request::Txn(TxnRequest {
            session,
            client_txn: i,
            deadline_ms: 0,
            ops: vec![TxnOp {
                write: true,
                object: i as u32,
            }],
        }))? {
            Response::TxnOk { .. } => {}
            other => return Err(format!("stats golden: expected TxnOk, got {other:?}")),
        }
    }
    match ask(&Request::Ping)? {
        Response::PingOk => {}
        other => return Err(format!("stats golden: expected PingOk, got {other:?}")),
    }
    match ask(&Request::Stats)? {
        Response::StatsOk { json, .. } => Ok(json),
        other => Err(format!("stats golden: expected StatsOk, got {other:?}")),
    }
}

/// Serve bench rows: boot an in-process concurrent server on a loopback
/// port, run a fixed fault-free load, and emit one schema-2 row whose
/// report joins with `obs diff` (it carries `mean_response_s`) plus the
/// serving-specific stats (p99 latency, sustained sessions/sec).
pub fn bench_serve_render() -> Result<String, CliError> {
    let cfg = ServeConfig {
        mode: ServeMode::Concurrent,
        workers: 4,
        queue_cap: 256,
        ..ServeConfig::default()
    };
    let handle = Server::start(cfg, "127.0.0.1:0").map_err(|e| CliError::from_serve(&e))?;
    let load = LoadConfig {
        addr: handle.addr().to_string(),
        connections: 4,
        sessions_per_conn: 50,
        txns_per_session: 4,
        chaos: NetChaosConfig::none(),
        pipeline: 16,
        seed: 1989,
        ..LoadConfig::default()
    };
    let summary = run_load(&load).map_err(|e| CliError::from_serve(&e))?;
    handle.request_shutdown();
    let report = handle.join().map_err(|e| CliError::from_serve(&e))?;
    if report.acid_violations > 0 {
        return Err(CliError::acid(format!(
            "bench-report serve: {} ACID violation(s)",
            report.acid_violations
        )));
    }
    Ok(serve_bench_row(&summary, &report))
}

fn serve_bench_row(summary: &LoadSummary, report: &ServeReport) -> String {
    // Server-side quantiles come from the drain-time stats snapshot:
    // client-side p99 (above) includes the network and the client's own
    // scheduling, server-side p99 only the service time — diverging
    // trends between the two tell you *where* a regression lives.
    let server_ms = |q: f64| -> f64 {
        report
            .stats
            .latency("total")
            .map_or(0.0, |h| h.quantile_bound_us(q) as f64 / 1e3)
    };
    let mut out = format!(
        concat!(
            "{{\"job\":\"serve-smoke\",\"rep\":0,\"report\":{{",
            "\"mean_response_s\":{:.6},\"p50_ms\":{:.3},\"p99_ms\":{:.3},",
            "\"server_p50_ms\":{:.3},\"server_p99_ms\":{:.3},",
            "\"sessions_per_sec\":{:.2},\"sessions\":{},\"attempted\":{},\"acked\":{},",
            "\"committed\":{},\"sheds\":{},\"deadline_misses\":{},\"retry_exhausted\":{},",
            "\"group_commits\":{},\"group_txns\":{},\"acid_violations\":{}}}}}\n"
        ),
        summary.mean_ms / 1e3,
        summary.p50_ms,
        summary.p99_ms,
        server_ms(0.50),
        server_ms(0.99),
        summary.sessions_per_sec,
        summary.sessions,
        summary.attempted,
        summary.acked,
        report.committed,
        report.sheds,
        report.deadline_misses,
        report.retry_exhausted,
        report.group_commits,
        report.group_txns,
        report.acid_violations,
    );
    // Profile-shaped attribution lines, one per server span: `obs diff`
    // joins them on (job, phase) exactly like engine profile stacks, so
    // a serve p99 regression names the responsible server phase.
    for (phase, hist) in &report.stats.latency_us {
        if *phase == "total" {
            continue;
        }
        out.push_str(&format!(
            "{{\"job\":\"serve-smoke\",\"phase\":\"serve;{phase}\",\"calls\":{},\
             \"sim_us\":{},\"alloc_bytes\":0,\"allocs\":0}}\n",
            hist.count, hist.sum_us
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn chaos_golden_is_jobs_invariant_and_stable() {
        let a = chaos_golden_render(1).unwrap();
        let b = chaos_golden_render(8).unwrap();
        assert_eq!(a, b, "chaos plans must not depend on thread count");
        assert!(a.starts_with("{\"golden_schema\":1,\"suite\":\"chaos\"}\n"));
        // Both presets and all three seeds appear.
        assert!(a.contains("\"preset\":\"none\""));
        assert!(a.contains("\"preset\":\"chaos\""));
        assert!(a.contains("\"seed\":88473"));
    }

    #[test]
    fn load_flags_parse() {
        let cfg = load_config_from_args(&parse(
            "load --addr 127.0.0.1:9 --connections 2 --sessions 10 --txns 3 \
             --chaos chaos --pipeline 4 --seed 7 --shutdown",
        ))
        .unwrap();
        assert_eq!(cfg.connections, 2);
        assert_eq!(cfg.sessions_per_conn, 10);
        assert_eq!(cfg.txns_per_session, 3);
        assert!(cfg.chaos.enabled());
        assert!(cfg.shutdown_after);
        assert!(
            load_config_from_args(&parse("load")).is_err(),
            "--addr required"
        );
        assert!(load_config_from_args(&parse("load --addr x --chaos nope")).is_err());
    }

    #[test]
    fn serve_flags_parse() {
        let cfg = serve_config_from_args(&parse(
            "serve --workers 2 --queue-cap 32 --deadline-ms 250 --group-window-us 50",
        ))
        .unwrap();
        assert!(matches!(cfg.mode, ServeMode::Concurrent));
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.queue_cap, 32);
        assert_eq!(cfg.default_deadline_ms, 250);
        assert_eq!(cfg.group_window_us, 50);
        assert_eq!(
            cfg.timeline_interval_ms, 0,
            "sampling off without --timeline"
        );
        assert_eq!(cfg.metrics_addr, None, "metrics endpoint off by default");
        assert_eq!(cfg.trace_requests, 0, "trace retention off by default");
        assert_eq!(cfg.drain_linger_ms, 0, "prompt drain by default");
        let cfg = serve_config_from_args(&parse(
            "serve --mode oracle --workload med5-10 --timeline t.json",
        ))
        .unwrap();
        assert!(matches!(cfg.mode, ServeMode::Oracle(_)));
        assert_eq!(cfg.timeline_interval_ms, 100);
        assert!(serve_config_from_args(&parse("serve --mode nope")).is_err());
        let cfg = serve_config_from_args(&parse(
            "serve --metrics-addr 127.0.0.1:9100 --slo-window 12 --chrome-trace t.json \
             --drain-linger-ms 2500",
        ))
        .unwrap();
        assert_eq!(cfg.metrics_addr.as_deref(), Some("127.0.0.1:9100"));
        assert_eq!(cfg.slo_window, 12);
        assert_eq!(cfg.drain_linger_ms, 2500);
        assert_eq!(
            cfg.trace_requests, 100_000,
            "--chrome-trace turns on request-trace retention"
        );
    }

    #[test]
    fn stats_golden_synthetic_section_is_jobs_invariant() {
        // The full render boots a server; the unit test pins just the
        // clock-free synthetic section (the integration suite covers
        // the live probe). Both renders must agree byte-for-byte.
        let a = stats_golden_render(1).unwrap();
        let b = stats_golden_render(8).unwrap();
        let synth = |s: &str| {
            s.split("{\"section\":\"oracle-live\"}\n")
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(synth(&a), synth(&b), "synthetic section is clock-free");
        assert!(a.starts_with("{\"golden_schema\":1,\"suite\":\"stats\"}\n"));
        assert!(a.contains("{\"section\":\"synthetic\"}\n"));
        assert!(a.contains("\"txn_ok\":6"), "six synthetic successes");
        assert!(a.contains("semcluster_latency_us_count{phase=\"total\"} 6"));
        // The live section kept only the wall-clock-free lines.
        let live = a.split("{\"section\":\"oracle-live\"}\n").nth(1).unwrap();
        assert!(live.contains("\"req.txn\":8"), "live section: {live}");
        assert!(!live.contains("uptime_ms"), "live section: {live}");
    }
}
