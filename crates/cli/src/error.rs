//! Typed CLI errors carrying a distinct process exit code, so CI can
//! tell a missing bench snapshot or a schema mismatch from an ordinary
//! failure without parsing stderr.

use std::fmt;
use std::ops::Deref;

/// Ordinary failure.
pub const EXIT_FAILURE: i32 = 1;
/// A required input file does not exist. (`2` is taken by argv parse
/// errors in `main`.)
pub const EXIT_MISSING_INPUT: i32 = 3;
/// An input file exists but carries an unknown or absent schema
/// version.
pub const EXIT_BAD_SCHEMA: i32 = 4;
/// A network operation (bind, connect, send) failed: the service is
/// unavailable.
pub const EXIT_UNAVAILABLE: i32 = 5;
/// A peer violated the wire protocol.
pub const EXIT_PROTOCOL: i32 = 6;
/// The server acknowledged transactions that recovery does not count
/// as winners — a broken durability promise.
pub const EXIT_ACID: i32 = 7;

/// A CLI error: the message `main` prints to stderr plus the process
/// exit code it exits with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code ([`EXIT_FAILURE`], [`EXIT_MISSING_INPUT`] or
    /// [`EXIT_BAD_SCHEMA`]).
    pub code: i32,
}

impl CliError {
    /// An ordinary failure (exit code 1).
    pub fn general(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: EXIT_FAILURE,
        }
    }

    /// A required input file is missing (exit code 3).
    pub fn missing_input(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: EXIT_MISSING_INPUT,
        }
    }

    /// An input file has an unknown schema version (exit code 4).
    pub fn bad_schema(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: EXIT_BAD_SCHEMA,
        }
    }

    /// A network operation failed (exit code 5).
    pub fn unavailable(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: EXIT_UNAVAILABLE,
        }
    }

    /// A peer violated the wire protocol (exit code 6).
    pub fn protocol(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: EXIT_PROTOCOL,
        }
    }

    /// Acked transactions were not durable at drain (exit code 7).
    pub fn acid(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: EXIT_ACID,
        }
    }

    /// Map a serve-path error onto the CLI's typed exit codes.
    pub fn from_serve(e: &semcluster::serve::ServeError) -> Self {
        use semcluster::serve::ServeError;
        match e {
            ServeError::Net { .. } => CliError::unavailable(e.to_string()),
            ServeError::Protocol(_) => CliError::protocol(e.to_string()),
            ServeError::Acid { .. } => CliError::acid(e.to_string()),
            _ => CliError::general(e.to_string()),
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::general(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError::general(message)
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Lets call sites (and the test suite) treat the error as its message:
/// `err.contains("...")`, `err.starts_with("...")`.
impl Deref for CliError {
    type Target = str;

    fn deref(&self) -> &str {
        &self.message
    }
}
