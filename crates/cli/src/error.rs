//! Typed CLI errors carrying a distinct process exit code, so CI can
//! tell a missing bench snapshot or a schema mismatch from an ordinary
//! failure without parsing stderr.

use std::fmt;
use std::ops::Deref;

/// Ordinary failure.
pub const EXIT_FAILURE: i32 = 1;
/// A required input file does not exist. (`2` is taken by argv parse
/// errors in `main`.)
pub const EXIT_MISSING_INPUT: i32 = 3;
/// An input file exists but carries an unknown or absent schema
/// version.
pub const EXIT_BAD_SCHEMA: i32 = 4;

/// A CLI error: the message `main` prints to stderr plus the process
/// exit code it exits with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code ([`EXIT_FAILURE`], [`EXIT_MISSING_INPUT`] or
    /// [`EXIT_BAD_SCHEMA`]).
    pub code: i32,
}

impl CliError {
    /// An ordinary failure (exit code 1).
    pub fn general(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: EXIT_FAILURE,
        }
    }

    /// A required input file is missing (exit code 3).
    pub fn missing_input(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: EXIT_MISSING_INPUT,
        }
    }

    /// An input file has an unknown schema version (exit code 4).
    pub fn bad_schema(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: EXIT_BAD_SCHEMA,
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::general(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError::general(message)
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Lets call sites (and the test suite) treat the error as its message:
/// `err.contains("...")`, `err.starts_with("...")`.
impl Deref for CliError {
    type Target = str;

    fn deref(&self) -> &str {
        &self.message
    }
}
