//! # semcluster-cli
//!
//! Library backing the `semclusterctl` binary: flag parsing ([`Args`])
//! and the subcommand implementations ([`dispatch`] and friends), kept in
//! a library so they are unit-testable.

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod error;
pub mod servecmd;
pub mod topcmd;

pub use args::Args;
pub use commands::{dispatch, USAGE};
pub use error::{
    CliError, EXIT_ACID, EXIT_BAD_SCHEMA, EXIT_FAILURE, EXIT_MISSING_INPUT, EXIT_PROTOCOL,
    EXIT_UNAVAILABLE,
};
