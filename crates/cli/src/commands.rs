//! The CLI subcommands.

use crate::args::Args;
use crate::error::CliError;
use semcluster::{
    replication_config, run_crash_matrix, run_simulation, run_simulation_observed,
    workload_from_label, CrashMatrixConfig, CrashPoint, DurableMirror, FaultConfig, MatrixBackend,
    ObsConfig, ReplicatedResult, RunReport, SimConfig, SweepJob, SweepRunner, SweepSummary,
};
use semcluster_analysis::Table;
use semcluster_buffer::{PrefetchScope, ReplacementPolicy};
use semcluster_clustering::{
    broken_arc_weight, static_recluster, ClusteringPolicy, SplitPolicy, WeightModel,
};
use semcluster_obs::{ChromeTraceSink, FoldedMetric, JsonlSink, ProfileReport, SplitVerdict};
use semcluster_sim::SimRng;
use semcluster_storage::StorageManager;
use semcluster_vdm::{RelKind, SyntheticDbSpec};
use semcluster_workload::{analyze, generate_trace, oct_tools};

/// Top-level usage text.
pub const USAGE: &str = "semclusterctl — the semcluster OODBMS simulator

USAGE:
  semclusterctl simulate [--preset|--workload low3-5|med5-10|hi10-100|…]
                         [--clustering none|buffer|2io|10io|nolimit|adaptive]
                         [--replacement lru|random|ctx]
                         [--prefetch none|buffer|db]
                         [--split none|linear|np]
                         [--buffer-pages N] [--paper-scale]
                         [--reps N] [--jobs N] [--seed N] [--json]
                         [--backend sim|file] [--data-dir DIR]
                         [--faults none|smoke|degraded|stress]
                         [--trace out.jsonl] [--chrome-trace out.json]
                         [--timeline out.json] [--timeline-interval-us N]
                         [--metrics json|table]
                         [--profile] [--folded out.folded]
                         [--folded-metric wall_ns|sim_us|alloc_bytes|allocs|calls]
  semclusterctl explain  [same config flags as simulate] [--json]
  semclusterctl explain-placement [same config flags as simulate]
                         [--last N] [--json]
  semclusterctl trace    [--invocations N] [--seed N]
  semclusterctl inspect  [--workload med5-10] [--mbytes N] [--seed N]
  semclusterctl reorg    [--modules N] [--seed N]
  semclusterctl golden   [--bless]
                         [--suite smoke|faults|timeline|profile|chaos|stats]
                         [--path FILE] [--jobs N]
  semclusterctl bench-report [--out FILE] [--jobs N]
                         [--suite smoke|full|serve] [--folded FILE]
                         [--folded-metric wall_ns|sim_us|alloc_bytes|allocs|calls]
  semclusterctl serve    [--addr HOST:PORT] [--mode concurrent|oracle]
                         [--workers N] [--queue-cap N] [--deadline-ms N]
                         [--max-inflight N] [--group-window-us N]
                         [--objects N] [--timeline FILE]
                         [--timeline-interval-ms N]
                         [--metrics-addr HOST:PORT] [--slo-window N]
                         [--chrome-trace FILE] [--trace-requests N]
                         [--drain-linger-ms N]
                         [oracle mode: same config flags as simulate]
  semclusterctl load     --addr HOST:PORT [--connections N] [--sessions N]
                         [--txns N] [--ops N] [--write-pct N] [--objects N]
                         [--deadline-ms N] [--seed N] [--chaos none|chaos]
                         [--pipeline N] [--shutdown]
  semclusterctl top      --addr HOST:PORT [--interval-ms N] [--count N]
                         [--raw]
  semclusterctl obs diff BASELINE.json CURRENT.json [--threshold PCT]
  semclusterctl crash-matrix [--preset smoke|deep] [--samples N]
                         [--backend sim|file|both] [--scratch-dir DIR]
                         [--jobs N] [--json]
  semclusterctl help

  simulate --trace streams every engine event (txn begin/commit, page
  reads/flushes, prefetch, log flushes, lock waits, splits) as JSON
  Lines stamped in simulated time; same seed → byte-identical trace.
  simulate --chrome-trace writes the same events in Chrome Trace Event
  format instead — open the file in chrome://tracing or Perfetto.
  simulate --timeline samples buffer hit ratio, per-disk queue depth,
  log-buffer occupancy, abort rate and the clustering-locality score at
  a fixed simulated-time interval (default 1 s) into a JSON timeline.
  simulate --metrics prints the counter/gauge/histogram registry
  snapshot for the measured interval. simulate --profile runs with the
  deterministic phase profiler on: per-phase call counts, simulated
  time, and bytes allocated land as a JSON object on stdout (stable
  at any --jobs count), the wall-clock table goes to stderr, and
  --folded writes flamegraph-ready folded stacks (pick the value with
  --folded-metric; default wall_ns). explain attributes mean response
  time into CPU / demand-read / dirty-flush / cluster-search / log /
  lock-wait components. explain-placement replays a run with placement
  auditing on and prints the last N (re)cluster decisions: candidate
  pages with per-candidate affinity/gain, the chosen vs landed page,
  the split verdict and the I/Os the search charged.

  simulate --jobs N runs the replications on N worker threads (0 or
  omitted = all cores); output is byte-identical at any thread count.
  simulate --faults injects deterministic disk/log faults from a named
  preset: transient read/write errors with retry + backoff, latency
  spikes, hot disks, and log stalls; same seed → same faults at any
  thread count.
  golden runs a fixed sweep and byte-compares it against the committed
  golden file (exit 1 on drift, with a unified diff of the first
  mismatch); golden --bless regenerates the file after an intentional
  behaviour change. --suite faults runs the fault-injection sweep
  against goldens/faults_smoke.json instead of the fault-free smoke
  sweep; --suite timeline runs the timeline-sampled sweep against
  goldens/timeline_smoke.json; --suite profile runs the profiled sweep
  against goldens/profile_smoke.json, pinning per-phase call and
  allocation counts — including that every arena-backed hot-path leaf
  (page-locality fold, placement scoring, buffer lookup, event-queue
  pop) stays allocation-free.
  simulate --paper-scale starts from the paper's unscaled Table 4.1
  configuration (500 MB database, 1000 buffer pages, ≈1.6 M objects)
  instead of the proportionally scaled default; other flags still
  apply on top.
  bench-report runs the fixed smoke sweep and writes a schema-stable
  BENCH_<n>.json perf snapshot (simulated-time stats only; wall clock
  goes to stderr), including a per-phase profile section; --suite full
  appends the two paper-scale jobs CI's full-scale perf wall runs, and
  --folded writes the sweep-wide folded stacks. obs diff
  compares two such snapshots run-by-run and exits 1 if any run's mean
  response regressed beyond --threshold (default 5 %), attributing each
  regression to the phases with the largest simulated-time and
  allocation deltas.
  serve boots the engine behind a length-prefixed TCP wire protocol and
  prints `listening on ADDR` once bound. --mode concurrent (default)
  drives one shared engine core from a worker pool with strict 2PL and
  WAL group commit; every request carries a deadline, the execution
  queue is bounded, and admission control sheds load with hysteresis.
  --mode oracle serializes every client through a single simulator
  thread, so one client's REPORT is byte-identical to `simulate`.
  SIGTERM/SIGINT (or a client SHUTDOWN frame) drains in-flight work,
  then the server crashes its own WAL, replays recovery, and verifies
  every acknowledged transaction survived — exiting 7 if any did not.
  load is the matching load generator: N connection threads multiplex
  logical sessions, pipeline transactions, and optionally inject
  client-side network chaos (dropped/stalled/half-closed connections,
  slow-loris trickle, corrupt frames) from a keyed-hash plan; the
  summary JSON reports sessions/sec, latency percentiles, and typed
  rejection counts. golden --suite chaos pins those chaos schedules.
  serve --metrics-addr additionally serves a read-only Prometheus text
  exposition of the live telemetry registry (per-opcode request
  counters, typed-error counters, gauges, per-phase latency histograms,
  rolling SLO summary) over HTTP; it keeps answering through drain. A
  STATS frame on the main port returns the same snapshot as versioned
  JSON, even while draining or overloaded; --drain-linger-ms keeps idle
  connections open for such probes once a drain begins (default 0 =
  close them immediately). Every served transaction's
  service time is attributed server-side into admission-wait /
  lock-wait / engine-exec / commit-wait / reply-write spans that sum to
  the total exactly; serve --chrome-trace writes the retained
  per-request spans as a `serve-requests` lane for chrome://tracing.
  top polls STATS at a fixed interval and renders a one-line-per-tick
  terminal view (throughput, queue depth, rolling p50/p99, error rate);
  --raw prints the snapshot JSON verbatim instead. golden --suite stats
  pins the telemetry renders (synthetic replay + live oracle probe).
  bench-report --suite serve boots an in-process server, runs a fixed
  fault-free load, and snapshots sustained sessions/sec and p99 latency
  from both sides (client-observed and server-side service time), plus
  per-span attribution lines obs diff uses to name the server phase
  behind a serve regression.
  crash-matrix crashes a small workload at every commit boundary plus
  sampled intra-transaction and torn-log points, replays recovery at
  each, and verifies ACID invariants (exit 1 on any violation).
  crash-matrix --backend file shadows every run with the durable
  file-backed page store, adds crash-at-syscall and fsync-failure
  points, and verifies ACID by recovering the real files from disk
  (twice — recovery must be an idempotent byte-level no-op); failing
  points preserve their store under --scratch-dir (default
  target/crash-scratch). simulate --backend file runs one replication
  against the same durable store under --data-dir (default
  target/simulate-data), pulls the plug at the end, and verifies the
  recovered files.
  exit codes: 1 failure, 2 bad flags, 3 missing input file, 4 unknown
  input schema (the latter two from obs diff's bench snapshots),
  5 network unavailable, 6 wire-protocol violation, 7 ACID violation
  (the latter three from serve/load).
";

/// Parse the clustering policy flag.
pub fn parse_clustering(v: &str) -> Result<ClusteringPolicy, String> {
    Ok(match v {
        "none" => ClusteringPolicy::NoCluster,
        "buffer" => ClusteringPolicy::WithinBuffer,
        "2io" => ClusteringPolicy::IoLimit(2),
        "10io" => ClusteringPolicy::IoLimit(10),
        "nolimit" => ClusteringPolicy::NoLimit,
        "adaptive" => ClusteringPolicy::Adaptive,
        other => {
            if let Some(k) = other.strip_suffix("io").and_then(|k| k.parse().ok()) {
                ClusteringPolicy::IoLimit(k)
            } else {
                return Err(format!("unknown clustering policy {other:?}"));
            }
        }
    })
}

/// Parse the replacement policy flag.
pub fn parse_replacement(v: &str) -> Result<ReplacementPolicy, String> {
    Ok(match v {
        "lru" => ReplacementPolicy::Lru,
        "random" => ReplacementPolicy::Random,
        "ctx" | "context" | "context-sensitive" => ReplacementPolicy::ContextSensitive,
        other => return Err(format!("unknown replacement policy {other:?}")),
    })
}

/// Parse the prefetch flag.
pub fn parse_prefetch(v: &str) -> Result<PrefetchScope, String> {
    Ok(match v {
        "none" => PrefetchScope::None,
        "buffer" => PrefetchScope::WithinBuffer,
        "db" | "database" => PrefetchScope::WithinDatabase,
        other => return Err(format!("unknown prefetch scope {other:?}")),
    })
}

/// Parse the split flag.
pub fn parse_split(v: &str) -> Result<SplitPolicy, String> {
    Ok(match v {
        "none" => SplitPolicy::NoSplit,
        "linear" => SplitPolicy::Linear,
        "np" | "optimal" => SplitPolicy::Optimal,
        other => return Err(format!("unknown split policy {other:?}")),
    })
}

/// Build a `SimConfig` from flags.
pub fn config_from_args(args: &Args) -> Result<SimConfig, String> {
    // `--paper-scale` starts from the unscaled Table 4.1 configuration
    // (500 MB database, 1000 buffer pages) instead of the proportionally
    // scaled default; every other flag still applies on top.
    let mut cfg = if args.flag("paper-scale") {
        SimConfig::paper_scale()
    } else {
        SimConfig::default()
    };
    // `--preset` is an alias for `--workload`.
    if let Some(label) = args.get("workload").or_else(|| args.get("preset")) {
        cfg.workload =
            workload_from_label(label).ok_or_else(|| format!("unknown workload {label:?}"))?;
    }
    if let Some(v) = args.get("clustering") {
        cfg.clustering = parse_clustering(v)?;
    }
    if let Some(v) = args.get("replacement") {
        cfg.replacement = parse_replacement(v)?;
    }
    if let Some(v) = args.get("prefetch") {
        cfg.prefetch = parse_prefetch(v)?;
    }
    if let Some(v) = args.get("split") {
        cfg.split = parse_split(v)?;
    }
    if let Some(v) = args.get("faults") {
        cfg.faults = FaultConfig::preset(v).ok_or_else(|| {
            format!(
                "unknown fault preset {v:?} (expected one of {})",
                FaultConfig::PRESETS.join(", ")
            )
        })?;
    }
    cfg.buffer_pages = args.get_parsed("buffer-pages", cfg.buffer_pages)?;
    cfg.seed = args.get_parsed("seed", cfg.seed)?;
    cfg.measured_txns = args.get_parsed("txns", cfg.measured_txns)?;
    Ok(cfg)
}

/// Render a run report as a minimal JSON object. Delegates to the
/// canonical [`RunReport::to_json`] serialization in the core crate —
/// the same bytes the wire-protocol server's REPORT response carries,
/// so CLI report lines, goldens and served reports can never drift
/// apart.
pub fn report_to_json(report: &RunReport) -> String {
    report.to_json()
}

/// Run `reps` replications of `cfg` on `jobs` worker threads (0 = all
/// cores) and fold them as [`run_replicated`] would. Each replication
/// becomes one single-replication sweep job under the shared seed
/// schedule ([`replication_config`]), so the fold sees exactly the
/// report sequence of a serial run — the thread count never shows in
/// the output.
///
/// [`run_replicated`]: semcluster::run_replicated
fn run_replications_parallel(
    cfg: &SimConfig,
    reps: u32,
    jobs: usize,
) -> Result<ReplicatedResult, String> {
    if reps == 0 {
        return Err("--reps: need at least one replication".into());
    }
    let sweep_jobs = (0..reps)
        .map(|r| SweepJob::new(format!("rep{r}"), replication_config(cfg, r), 1))
        .collect();
    let results = SweepRunner::new(jobs)
        .run(sweep_jobs)
        .into_results()
        .map_err(|e| e.to_string())?;
    let reports = results
        .into_iter()
        .flat_map(|r| r.reports.into_iter())
        .collect();
    Ok(ReplicatedResult::from_reports(reports))
}

/// `simulate` subcommand.
pub fn cmd_simulate(args: &Args) -> Result<String, String> {
    let cfg = config_from_args(args)?;
    match args.get("backend") {
        None | Some("sim") => {}
        Some("file") => return simulate_file_backend(args, cfg),
        Some(other) => return Err(format!("--backend: expected sim or file, got {other:?}")),
    }
    if args.get("trace").is_some()
        || args.get("chrome-trace").is_some()
        || args.get("timeline").is_some()
        || args.get("metrics").is_some()
        || args.flag("profile")
        // Routed through the instrumented path even though they are
        // invalid without --profile, so the user gets the error rather
        // than a silently ignored flag.
        || args.get("folded").is_some()
        || args.get("folded-metric").is_some()
    {
        return simulate_instrumented(args, cfg);
    }
    let reps: u32 = args.get_parsed("reps", 1)?;
    let jobs: usize = args.get_parsed("jobs", 0)?;
    let result = run_replications_parallel(&cfg, reps, jobs)?;
    if args.flag("json") {
        let mut out = String::from("[");
        for (i, report) in result.reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&report_to_json(report));
        }
        out.push(']');
        return Ok(out);
    }
    let r = &result.reports[0];
    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec!["configuration".to_string(), r.config_label.clone()]);
    table.row(vec![
        "mean response".to_string(),
        format!(
            "{:.1} ms ± {:.1} (95% CI over {} reps)",
            result.response.mean * 1e3,
            result.response.ci95 * 1e3,
            reps
        ),
    ]);
    table.row(vec![
        "p50 / p95 response".to_string(),
        format!(
            "{:.1} / {:.1} ms",
            r.p50_response_s * 1e3,
            r.p95_response_s * 1e3
        ),
    ]);
    table.row(vec![
        "buffer hit ratio".to_string(),
        format!("{:.1} %", result.hit_ratio.mean * 100.0),
    ]);
    table.row(vec![
        "I/Os (read/log/search/prefetch)".to_string(),
        format!(
            "{} / {} / {} / {}",
            r.io.data_reads, r.log_ios, r.io.cluster_search_ios, r.io.prefetch_ios
        ),
    ]);
    table.row(vec![
        "splits / recluster moves / lock waits".to_string(),
        format!("{} / {} / {}", r.splits, r.recluster_moves, r.lock_waits),
    ]);
    table.row(vec![
        "disk / cpu utilisation".to_string(),
        format!(
            "{:.1} % / {:.1} %",
            r.disk_utilization * 100.0,
            r.cpu_utilization * 100.0
        ),
    ]);
    Ok(table.render())
}

/// `simulate --backend file`: one replication shadowed by the durable
/// file-backed store under `--data-dir` (default `target/simulate-data`),
/// then the plug is pulled and the run's durability is verified by
/// recovering the real files from disk — twice, since recovery must be
/// idempotent. The recovered `pages.db`/`wal.log` are left in place for
/// inspection.
fn simulate_file_backend(args: &Args, mut cfg: SimConfig) -> Result<String, String> {
    if args.get_parsed("reps", 1u32)? != 1 {
        return Err("--backend file: runs a single replication (drop --reps)".into());
    }
    cfg.retain_log = true;
    let dir = std::path::PathBuf::from(args.get("data-dir").unwrap_or("target/simulate-data"));
    std::fs::create_dir_all(&dir)
        .map_err(|e| format!("--data-dir {}: cannot create directory: {e}", dir.display()))?;
    for name in [semcluster_storage::PAGES_FILE, semcluster_storage::WAL_FILE] {
        let stale = dir.join(name);
        if stale.exists() {
            std::fs::remove_file(&stale)
                .map_err(|e| format!("--data-dir: cannot clear stale {}: {e}", stale.display()))?;
        }
    }
    let seed = cfg.seed;
    let mut engine = semcluster::Engine::new(cfg);
    let mirror = DurableMirror::create(
        &dir,
        semcluster_faults::FsFaultConfig {
            seed,
            ..Default::default()
        },
    )
    .map_err(|e| {
        format!(
            "file backend: cannot create store in {}: {e}",
            dir.display()
        )
    })?;
    engine.attach_mirror(mirror).map_err(|e| {
        format!(
            "file backend: checkpoint into {} failed: {e}",
            dir.display()
        )
    })?;
    let outcome = engine.run_and_crash_at(CrashPoint::End);
    let artifacts = outcome
        .file
        .as_ref()
        .expect("mirror attached, so the outcome carries file artifacts");

    let rec1 = semcluster_storage::recover_dir(&dir)
        .map_err(|e| format!("file backend: recovery in {} failed: {e}", dir.display()))?;
    let snapshot = |n: &str| std::fs::read(dir.join(n)).ok();
    let snap1 = (
        snapshot(semcluster_storage::PAGES_FILE),
        snapshot(semcluster_storage::WAL_FILE),
    );
    let rec2 = semcluster_storage::recover_dir(&dir).map_err(|e| {
        format!(
            "file backend: second recovery in {} failed: {e}",
            dir.display()
        )
    })?;
    let stable = snap1
        == (
            snapshot(semcluster_storage::PAGES_FILE),
            snapshot(semcluster_storage::WAL_FILE),
        );
    let violations = outcome.verify_file(&rec1, &rec2, stable);
    if !violations.is_empty() {
        return Err(format!(
            "file backend: ACID violations after recovery from {}:\n  {}",
            dir.display(),
            violations.join("\n  ")
        ));
    }

    let r = &outcome.report;
    let fs = artifacts.report.stats;
    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec!["configuration".to_string(), r.config_label.clone()]);
    table.row(vec![
        "backend".to_string(),
        format!("file ({})", dir.display()),
    ]);
    table.row(vec![
        "mean response".to_string(),
        format!("{:.1} ms", r.mean_response_s * 1e3),
    ]);
    table.row(vec![
        "durable traffic".to_string(),
        format!(
            "{} wal ops / {} steals / {} commits",
            artifacts.stats.ops_logged, artifacts.stats.steals, artifacts.stats.commits_ok
        ),
    ]);
    table.row(vec![
        "filesystem".to_string(),
        format!(
            "{} writes / {} fsyncs / {} bytes synced",
            fs.writes, fs.fsyncs, fs.bytes_synced
        ),
    ]);
    table.row(vec![
        "recovery".to_string(),
        format!(
            "{} winners / {} losers / {} redo / {} undo / {} pages repaired",
            rec1.winners.len(),
            rec1.losers.len(),
            rec1.redone,
            rec1.undone,
            rec1.repaired_pages.len()
        ),
    ]);
    table.row(vec![
        "acked commits verified durable".to_string(),
        format!("{}", outcome.acked.len()),
    ]);
    Ok(table.render())
}

/// One instrumented run: optional JSONL or Chrome trace to a file,
/// optional sampled timeline, optional metrics-registry snapshot (JSON
/// or ASCII table).
fn simulate_instrumented(args: &Args, cfg: SimConfig) -> Result<String, String> {
    let trace_path = args.get("trace");
    let chrome_path = args.get("chrome-trace");
    if trace_path.is_some() && chrome_path.is_some() {
        return Err("--trace and --chrome-trace are mutually exclusive; pick one format".into());
    }
    let create = |flag: &str, path: &str| {
        std::fs::File::create(path)
            .map(std::io::BufWriter::new)
            .map_err(|e| format!("--{flag} {path}: cannot create file: {e}"))
    };
    let mut obs = match (trace_path, chrome_path) {
        (Some(path), None) => {
            ObsConfig::with_sink(Box::new(JsonlSink::new(create("trace", path)?)))
        }
        (None, Some(path)) => ObsConfig::with_sink(Box::new(ChromeTraceSink::new(create(
            "chrome-trace",
            path,
        )?))),
        _ => ObsConfig::default(),
    };
    let timeline_path = args.get("timeline");
    let interval_us: u64 = args.get_parsed("timeline-interval-us", 1_000_000)?;
    if interval_us == 0 {
        return Err("--timeline-interval-us: must be positive".into());
    }
    if timeline_path.is_some() {
        obs = obs.timeline(interval_us);
    }
    let profiled = args.flag("profile");
    let folded_path = args.get("folded");
    let folded_metric = match args.get("folded-metric") {
        None => FoldedMetric::WallNs,
        Some(m) => FoldedMetric::parse(m).ok_or_else(|| {
            format!("--folded-metric: expected wall_ns, sim_us, alloc_bytes, allocs or calls, got {m:?}")
        })?,
    };
    if (folded_path.is_some() || args.get("folded-metric").is_some()) && !profiled {
        return Err("--folded/--folded-metric need --profile".into());
    }
    if profiled {
        obs = obs.profile();
    }
    let (report, observed) = run_simulation_observed(cfg, obs);
    let snapshot = &observed.metrics;
    let profile = observed.profile.as_ref();
    let mut out = String::new();
    match args.get("metrics") {
        Some("json") => {
            // Report + registry snapshot in one parseable object, so the
            // per-category counters can be reconciled against the I/O
            // breakdown they mirror. The profile section holds only
            // deterministic counters (wall clock stays on stderr).
            out.push_str("{\"report\":");
            out.push_str(&report_to_json(&report));
            if let Some(profile) = profile {
                out.push_str(",\"profile\":");
                out.push_str(&profile.to_json());
            }
            out.push_str(",\"metrics\":");
            out.push_str(&snapshot.to_json());
            out.push_str("}\n");
        }
        Some("table") => {
            out.push_str(&snapshot.to_ascii_table());
        }
        Some(other) => return Err(format!("--metrics: expected json or table, got {other:?}")),
        None => {
            out.push_str(&report_to_json(&report));
            out.push('\n');
            if let Some(profile) = profile {
                out.push_str(&profile.to_json());
                out.push('\n');
            }
        }
    }
    if let Some(profile) = profile {
        // The per-phase wall-clock table is host-machine material and
        // must never reach the deterministic stdout stream.
        eprint!("{}", profile.render_table());
        if let Some(path) = folded_path {
            std::fs::write(path, profile.folded(folded_metric))
                .map_err(|e| format!("--folded {path}: cannot write file: {e}"))?;
            if args.get("metrics") != Some("json") {
                out.push_str(&format!("folded stacks written to {path}\n"));
            }
        }
    }
    if let Some(path) = timeline_path {
        let timeline = observed
            .timeline
            .as_ref()
            .expect("timeline sampling was enabled above");
        let mut body = timeline.to_json();
        body.push('\n');
        std::fs::write(path, body)
            .map_err(|e| format!("--timeline {path}: cannot write file: {e}"))?;
        if args.get("metrics") != Some("json") {
            out.push_str(&format!(
                "timeline written to {path} ({} samples)\n",
                timeline.len()
            ));
        }
    }
    if args.get("metrics") != Some("json") {
        if let Some(path) = trace_path {
            out.push_str(&format!("trace written to {path}\n"));
        }
        if let Some(path) = chrome_path {
            out.push_str(&format!(
                "chrome trace written to {path} — open in chrome://tracing or https://ui.perfetto.dev\n"
            ));
        }
    }
    Ok(out)
}

/// `explain` subcommand: attribute mean response time per component.
pub fn cmd_explain(args: &Args) -> Result<String, String> {
    let cfg = config_from_args(args)?;
    let report = run_simulation(cfg);
    let b = report.breakdown;
    let total = b.response_total_s();
    if args.flag("json") {
        return Ok(format!(
            concat!(
                "{{\"config\":{config:?},\"txns\":{txns},",
                "\"mean_response_s\":{total:.6},\"cpu_s\":{cpu:.6},",
                "\"data_read_s\":{dr:.6},\"dirty_flush_s\":{df:.6},",
                "\"cluster_search_s\":{cs:.6},\"log_s\":{log:.6},",
                "\"lock_wait_s\":{lw:.6},\"think_s\":{think:.6}}}\n"
            ),
            config = report.config_label,
            txns = report.txns,
            total = total,
            cpu = b.cpu_s,
            dr = b.data_read_s,
            df = b.dirty_flush_s,
            cs = b.cluster_search_s,
            log = b.log_s,
            lw = b.lock_wait_s,
            think = b.think_s,
        ));
    }
    let share = |v: f64| {
        if total > 0.0 {
            format!("{:.1} %", v / total * 100.0)
        } else {
            "-".to_string()
        }
    };
    let mut table = Table::new(vec!["component", "mean per txn", "share"]);
    let rows: [(&str, f64); 6] = [
        ("cpu", b.cpu_s),
        ("demand reads", b.data_read_s),
        ("dirty flushes", b.dirty_flush_s),
        ("cluster search", b.cluster_search_s),
        ("log", b.log_s),
        ("lock wait", b.lock_wait_s),
    ];
    for (name, v) in rows {
        table.row(vec![
            name.to_string(),
            format!("{:.2} ms", v * 1e3),
            share(v),
        ]);
    }
    table.row(vec![
        "total response".to_string(),
        format!("{:.2} ms", total * 1e3),
        "100.0 %".to_string(),
    ]);
    table.row(vec![
        "think (not in response)".to_string(),
        format!("{:.0} ms", b.think_s * 1e3),
        "-".to_string(),
    ]);
    let mut out = format!("response-time attribution — {}\n", report.config_label);
    out.push_str(&table.render());
    Ok(out)
}

/// `explain-placement` subcommand: replay a run with placement auditing
/// enabled and show the last N clustering decisions the engine made —
/// which candidate pages the placement search examined, their
/// affinity/gain scores, which page won, whether a split was weighed,
/// and what the search cost in I/Os.
pub fn cmd_explain_placement(args: &Args) -> Result<String, String> {
    let cfg = config_from_args(args)?;
    let last: usize = args.get_parsed("last", 12)?;
    if last == 0 {
        return Err("--last: need at least one record".into());
    }
    let (report, observed) = run_simulation_observed(cfg, ObsConfig::default().audit(last));
    let audits = observed.audits;
    if args.flag("json") {
        let mut out = String::new();
        for a in &audits {
            out.push_str(&a.to_json());
            out.push('\n');
        }
        return Ok(out);
    }
    if audits.is_empty() {
        return Ok(format!(
            "no placement decisions recorded — {} (is clustering `none`?)\n",
            report.config_label
        ));
    }
    let mut table = Table::new(vec![
        "t (ms)",
        "kind",
        "object",
        "cands",
        "chosen→landed",
        "score",
        "split",
        "ios",
    ]);
    for a in &audits {
        let chosen = match a.chosen {
            Some(p) => format!("{}→{}", p.0, a.landed.0),
            None => format!("append→{}", a.landed.0),
        };
        let split = match a.split {
            SplitVerdict::NotConsidered => "-".to_string(),
            SplitVerdict::Declined => "declined".to_string(),
            SplitVerdict::Executed { new_page } => format!("new p{}", new_page.0),
        };
        table.row(vec![
            format!("{:.1}", a.at.as_micros() as f64 / 1e3),
            a.kind.as_str().to_string(),
            a.object.to_string(),
            a.candidates.len().to_string(),
            chosen,
            format!("{:.3}", a.score_milli as f64 / 1e3),
            split,
            a.search_ios.to_string(),
        ]);
    }
    let mut out = format!(
        "last {} placement decisions — {}\n",
        audits.len(),
        report.config_label
    );
    out.push_str(&table.render());
    Ok(out)
}

/// `trace` subcommand.
pub fn cmd_trace(args: &Args) -> Result<String, String> {
    let invocations: usize = args.get_parsed("invocations", 50)?;
    let seed: u64 = args.get_parsed("seed", 1989)?;
    let mut rng = SimRng::seed_from_u64(seed);
    let tools = oct_tools();
    let trace = generate_trace(&tools, invocations, &mut rng);
    let stats = analyze(&trace);
    let mut table = Table::new(vec!["tool", "R/W", "I/O per s", "low/med/high density"]);
    for s in &stats {
        let rw = if s.rw_ratio().is_finite() {
            format!("{:.2}", s.rw_ratio())
        } else {
            "inf".into()
        };
        table.row(vec![
            s.tool.clone(),
            rw,
            format!("{:.1}", s.io_rate()),
            format!(
                "{:.0}/{:.0}/{:.0} %",
                s.density_shares[0] * 100.0,
                s.density_shares[1] * 100.0,
                s.density_shares[2] * 100.0
            ),
        ]);
    }
    Ok(table.render())
}

/// `inspect` subcommand: synthesize a database and report its shape and
/// layout quality under clustered vs scattered placement.
pub fn cmd_inspect(args: &Args) -> Result<String, String> {
    let mbytes: u64 = args.get_parsed("mbytes", 8)?;
    let seed: u64 = args.get_parsed("seed", 42)?;
    let label = args.get("workload").unwrap_or("med5-10");
    let workload =
        workload_from_label(label).ok_or_else(|| format!("unknown workload {label:?}"))?;
    let (fanout, depth) = match workload.density {
        semcluster_workload::StructureDensity::Low3 => ((1, 3), 6),
        semcluster_workload::StructureDensity::Med5 => ((4, 9), 3),
        semcluster_workload::StructureDensity::High10 => ((10, 15), 2),
    };
    let target = mbytes * 1024 * 1024 / 320;
    let mean_fanout = (fanout.0 + fanout.1) as f64 / 2.0;
    let mut tree = 1.0;
    let mut level = 1.0;
    for _ in 0..depth {
        level *= mean_fanout;
        tree += level;
    }
    let modules = ((target as f64 / (tree * 2.4)).round() as usize).max(1);
    let (db, stats) = SyntheticDbSpec {
        modules,
        depth,
        fanout,
        seed,
        ..SyntheticDbSpec::default()
    }
    .build();
    let mut by_kind = [0u64; 4];
    for (kind, _, _) in db.graph().edges() {
        by_kind[kind.index()] += 1;
    }
    let model = WeightModel::no_hints();
    let mut scattered = StorageManager::new(4096);
    for obj in db.objects() {
        scattered
            .append(obj.id, obj.size_bytes())
            .map_err(|e| e.to_string())?;
    }
    let (clustered, report) = static_recluster(&db, &scattered, &model, 0.3);
    let mut table = Table::new(vec!["property", "value"]);
    table.row(vec!["objects".to_string(), stats.objects.to_string()]);
    table.row(vec![
        "configuration edges".to_string(),
        by_kind[RelKind::Configuration.index()].to_string(),
    ]);
    table.row(vec![
        "version edges".to_string(),
        by_kind[RelKind::VersionHistory.index()].to_string(),
    ]);
    table.row(vec![
        "correspondence edges".to_string(),
        by_kind[RelKind::Correspondence.index()].to_string(),
    ]);
    table.row(vec![
        "inheritance edges".to_string(),
        by_kind[RelKind::Inheritance.index()].to_string(),
    ]);
    table.row(vec![
        "pages (scattered / clustered)".to_string(),
        format!("{} / {}", scattered.page_count(), clustered.page_count()),
    ]);
    table.row(vec![
        "broken arc weight (scattered / clustered)".to_string(),
        format!("{:.0} / {:.0}", report.broken_before, report.broken_after),
    ]);
    table.row(vec![
        "layout improvement".to_string(),
        format!("{:.0} %", report.improvement() * 100.0),
    ]);
    Ok(table.render())
}

/// `reorg` subcommand: offline reorganisation demo.
pub fn cmd_reorg(args: &Args) -> Result<String, String> {
    let modules: usize = args.get_parsed("modules", 20)?;
    let seed: u64 = args.get_parsed("seed", 7)?;
    let (db, _) = SyntheticDbSpec {
        modules,
        depth: 3,
        fanout: (2, 4),
        seed,
        ..SyntheticDbSpec::default()
    }
    .build();
    let model = WeightModel::no_hints();
    let mut store = StorageManager::new(4096);
    let n = db.object_count();
    for k in 0..n {
        let idx = (k * 613) % n;
        let obj = db.get(semcluster_vdm::ObjectId(idx as u32)).unwrap();
        store
            .append(obj.id, obj.size_bytes())
            .map_err(|e| e.to_string())?;
    }
    let before = broken_arc_weight(&db, &store, &model);
    let (fresh, report) = static_recluster(&db, &store, &model, 0.3);
    let after = broken_arc_weight(&db, &fresh, &model);
    Ok(format!(
        "reorganised {} objects onto {} pages\nbroken arc weight: {:.0} → {:.0} ({:.0}% repaired)\n",
        report.objects,
        report.pages,
        before,
        after,
        report.improvement() * 100.0
    ))
}

/// Default location of the committed golden file, relative to the
/// repository root (where CI invokes the CLI).
pub const GOLDEN_PATH: &str = "goldens/smoke.json";

/// Committed golden of the fault-injection sweep (`golden --suite
/// faults`).
pub const FAULTS_GOLDEN_PATH: &str = "goldens/faults_smoke.json";

/// The fixed smoke sweep behind `golden`: small, fast configurations
/// chosen to cross the clustering / splitting / replacement / prefetch
/// axes, with hard-coded seeds so the output is a pure function of the
/// engine. Changing this list invalidates the committed golden file —
/// re-bless after any intentional change.
pub fn golden_jobs() -> Vec<SweepJob> {
    let tiny = |label: &str, seed: u64| SimConfig {
        workload: workload_from_label(label).expect("known workload label"),
        database_bytes: 2 * 1024 * 1024,
        buffer_pages: 24,
        warmup_txns: 40,
        measured_txns: 120,
        seed,
        ..SimConfig::default()
    };
    let mut jobs = Vec::new();
    let mut add = |name: &str, cfg: SimConfig| jobs.push(SweepJob::new(name.to_string(), cfg, 2));
    add(
        "baseline",
        SimConfig {
            clustering: ClusteringPolicy::NoCluster,
            split: SplitPolicy::NoSplit,
            ..tiny("med5-10", 1100)
        },
    );
    add(
        "clustered",
        SimConfig {
            clustering: ClusteringPolicy::NoLimit,
            split: SplitPolicy::Linear,
            ..tiny("med5-10", 1200)
        },
    );
    add(
        "ctx-buffered",
        SimConfig {
            clustering: ClusteringPolicy::NoLimit,
            replacement: ReplacementPolicy::ContextSensitive,
            prefetch: PrefetchScope::WithinBuffer,
            ..tiny("med5-10", 1300)
        },
    );
    add(
        "adaptive-prefetch",
        SimConfig {
            clustering: ClusteringPolicy::Adaptive,
            prefetch: PrefetchScope::WithinDatabase,
            split: SplitPolicy::Optimal,
            ..tiny("low3-5", 1400)
        },
    );
    add(
        "io-limited",
        SimConfig {
            clustering: ClusteringPolicy::IoLimit(2),
            ..tiny("low3-5", 1500)
        },
    );
    add(
        "write-heavy-random",
        SimConfig {
            replacement: ReplacementPolicy::Random,
            ..tiny("hi10-100", 1600)
        },
    );
    jobs
}

/// The fixed fault-injection sweep behind `golden --suite faults`: the
/// same tiny scale as [`golden_jobs`], but each configuration runs
/// under a named fault preset so retries, spikes, log stalls, hot
/// disks and graceful degradation all leave deterministic fingerprints
/// in the golden. Re-bless after any intentional engine or fault-plan
/// change.
pub fn faults_golden_jobs() -> Vec<SweepJob> {
    let tiny = |label: &str, seed: u64, preset: &str| SimConfig {
        workload: workload_from_label(label).expect("known workload label"),
        database_bytes: 2 * 1024 * 1024,
        buffer_pages: 24,
        warmup_txns: 40,
        measured_txns: 120,
        seed,
        faults: FaultConfig::preset(preset).expect("known fault preset"),
        ..SimConfig::default()
    };
    let mut jobs = Vec::new();
    let mut add = |name: &str, cfg: SimConfig| jobs.push(SweepJob::new(name.to_string(), cfg, 2));
    add(
        "faults-smoke",
        SimConfig {
            clustering: ClusteringPolicy::NoLimit,
            split: SplitPolicy::Linear,
            ..tiny("med5-10", 2100, "smoke")
        },
    );
    add(
        "faults-degraded",
        SimConfig {
            clustering: ClusteringPolicy::NoLimit,
            prefetch: PrefetchScope::WithinDatabase,
            ..tiny("med5-10", 2200, "degraded")
        },
    );
    add(
        "faults-stress",
        SimConfig {
            clustering: ClusteringPolicy::Adaptive,
            ..tiny("hi10-100", 2300, "stress")
        },
    );
    jobs
}

/// Render the smoke sweep deterministically: one JSON line per
/// replication report (tagged with job label and replication index, in
/// submission order) and a final line with the merged metrics-registry
/// snapshot. Byte-identical at any `--jobs` count; the returned
/// [`SweepSummary`] is host wall-clock material (stderr only).
fn golden_render(jobs: Vec<SweepJob>, threads: usize) -> Result<(String, SweepSummary), String> {
    let (body, summary, _) = sweep_render(jobs, threads, false)?;
    Ok((body, summary))
}

/// Shared renderer behind [`golden_render`] and `bench-report`. With
/// `profile` set the sweep runs under the phase profiler and each job's
/// report lines are followed by one flat line per profiled stack —
/// deterministic counters only, so the profile section is as
/// thread-count-independent as the reports themselves. The third
/// return is the sweep-wide merged profile (None without `profile`),
/// which `bench-report --folded` exports as flamegraph input.
fn sweep_render(
    jobs: Vec<SweepJob>,
    threads: usize,
    profile: bool,
) -> Result<(String, SweepSummary, Option<ProfileReport>), String> {
    let mut runner = SweepRunner::new(threads);
    if profile {
        runner = runner.with_profile();
    }
    let outcome = runner.run(jobs);
    let mut out = String::new();
    for item in &outcome.items {
        let result = item
            .result
            .as_ref()
            .map_err(|e| format!("golden sweep: {e}"))?;
        for (rep, report) in result.reports.iter().enumerate() {
            out.push_str(&format!(
                "{{\"job\":{:?},\"rep\":{},\"report\":{}}}\n",
                item.label,
                rep,
                report_to_json(report)
            ));
        }
        if profile {
            let report = item
                .profile
                .as_ref()
                .ok_or_else(|| format!("sweep: job {} produced no profile", item.label))?;
            out.push_str(&profile_lines(&item.label, report));
        }
    }
    out.push_str(&format!("{{\"metrics\":{}}}\n", outcome.metrics.to_json()));
    Ok((out, outcome.summary, outcome.profile))
}

/// One flat JSON line per profiled stack, tagged with the job label.
/// Flat on purpose: the same `json_str_field`/`json_num_field` helpers
/// that read report lines can read these, and `obs diff` can join the
/// two sections of a snapshot by job label.
fn profile_lines(label: &str, profile: &ProfileReport) -> String {
    let mut out = String::new();
    for (path, s) in profile.phases() {
        out.push_str(&format!(
            concat!(
                "{{\"job\":{label:?},\"phase\":{path:?},\"calls\":{calls},",
                "\"sim_us\":{sim},\"alloc_bytes\":{bytes},\"allocs\":{allocs}}}\n"
            ),
            label = label,
            path = path,
            calls = s.calls,
            sim = s.sim_us,
            bytes = s.alloc_bytes,
            allocs = s.allocs,
        ));
    }
    out
}

/// Committed golden of the timeline-sampled sweep (`golden --suite
/// timeline`).
pub const TIMELINE_GOLDEN_PATH: &str = "goldens/timeline_smoke.json";

/// Timeline-sampling interval used by the timeline golden suite and by
/// `simulate --timeline` when `--timeline-interval-us` is not given:
/// one simulated second.
pub const DEFAULT_TIMELINE_INTERVAL_US: u64 = 1_000_000;

/// The fixed timeline sweep behind `golden --suite timeline`: three
/// tiny configurations (unclustered baseline, fully clustered with
/// context-sensitive buffering, and a fault-injected run) sampled every
/// simulated second. Re-bless after any intentional engine or sampler
/// change.
pub fn timeline_golden_jobs() -> Vec<SweepJob> {
    let tiny = |label: &str, seed: u64| SimConfig {
        workload: workload_from_label(label).expect("known workload label"),
        database_bytes: 2 * 1024 * 1024,
        buffer_pages: 24,
        warmup_txns: 40,
        measured_txns: 120,
        seed,
        ..SimConfig::default()
    };
    vec![
        SweepJob::new(
            "tl-baseline",
            SimConfig {
                clustering: ClusteringPolicy::NoCluster,
                split: SplitPolicy::NoSplit,
                ..tiny("med5-10", 3100)
            },
            2,
        ),
        SweepJob::new(
            "tl-clustered",
            SimConfig {
                clustering: ClusteringPolicy::NoLimit,
                replacement: ReplacementPolicy::ContextSensitive,
                prefetch: PrefetchScope::WithinBuffer,
                split: SplitPolicy::Linear,
                ..tiny("med5-10", 3200)
            },
            2,
        ),
        SweepJob::new(
            "tl-faults",
            SimConfig {
                clustering: ClusteringPolicy::NoLimit,
                faults: FaultConfig::preset("smoke").expect("known fault preset"),
                ..tiny("hi10-100", 3300)
            },
            2,
        ),
    ]
}

/// Render the timeline sweep deterministically: one JSON line per job
/// (its replications' timelines merged) and a final line with all jobs
/// merged. Sample boundaries are interval multiples and the merge is
/// order-independent, so the output is byte-identical at any `--jobs`
/// count.
fn timeline_golden_render(threads: usize) -> Result<String, String> {
    let outcome = SweepRunner::new(threads)
        .with_timeline(DEFAULT_TIMELINE_INTERVAL_US)
        .run(timeline_golden_jobs());
    let mut out = String::new();
    for item in &outcome.items {
        item.result
            .as_ref()
            .map_err(|e| format!("timeline sweep: {e}"))?;
        let timeline = item
            .timeline
            .as_ref()
            .ok_or_else(|| format!("timeline sweep: job {} produced no timeline", item.label))?;
        out.push_str(&format!(
            "{{\"job\":{:?},\"timeline\":{}}}\n",
            item.label,
            timeline.to_json()
        ));
    }
    let merged = outcome
        .timeline
        .ok_or("timeline sweep: no merged timeline")?;
    out.push_str(&format!("{{\"merged\":{}}}\n", merged.to_json()));
    Ok(out)
}

/// Committed golden of the profiled sweep (`golden --suite profile`).
pub const PROFILE_GOLDEN_PATH: &str = "goldens/profile_smoke.json";

/// Leaf phases whose allocation counters the profile golden pins to
/// zero. A stack is pinned when its last `;`-separated segment names
/// one of these, so both `run;buffer_lookup` and the nested
/// `run;placement_score;buffer_lookup` are covered. These are the
/// engine's per-event inner loops — the page-locality fold, placement
/// candidate scoring, buffer-pool frame lookup and the event-queue pop
/// — where a stray allocation multiplies across every simulated event
/// of a sweep. (`timeline_sample` itself is deliberately not pinned:
/// each retained sample stores a queue-delay vector by design.)
pub const ZERO_ALLOC_PIN_LEAVES: &[&str] = &[
    "page_locality",
    "placement_score",
    "buffer_lookup",
    "event_pop",
];

/// Whether a profiler stack path ends in one of the pinned leaf phases.
pub fn is_zero_alloc_pinned(path: &str) -> bool {
    let leaf = path.rsplit(';').next().unwrap_or(path);
    ZERO_ALLOC_PIN_LEAVES.contains(&leaf)
}

/// The fixed profiled sweep behind `golden --suite profile`: three tiny
/// configurations chosen to exercise every instrumented phase —
/// placement scoring (clustering + splits), prefetch, context-sensitive
/// eviction, WAL append/flush, lock waits and the timeline sampler's
/// page-locality fold. Re-bless after any intentional engine or
/// profiler change.
pub fn profile_golden_jobs() -> Vec<SweepJob> {
    let tiny = |label: &str, seed: u64| SimConfig {
        workload: workload_from_label(label).expect("known workload label"),
        database_bytes: 2 * 1024 * 1024,
        buffer_pages: 24,
        warmup_txns: 40,
        measured_txns: 120,
        seed,
        ..SimConfig::default()
    };
    vec![
        SweepJob::new(
            "prof-baseline",
            SimConfig {
                clustering: ClusteringPolicy::NoCluster,
                split: SplitPolicy::NoSplit,
                ..tiny("med5-10", 4100)
            },
            2,
        ),
        SweepJob::new(
            "prof-clustered",
            SimConfig {
                clustering: ClusteringPolicy::NoLimit,
                replacement: ReplacementPolicy::ContextSensitive,
                prefetch: PrefetchScope::WithinBuffer,
                split: SplitPolicy::Linear,
                ..tiny("med5-10", 4200)
            },
            2,
        ),
        SweepJob::new(
            "prof-write-heavy",
            SimConfig {
                clustering: ClusteringPolicy::Adaptive,
                ..tiny("hi10-100", 4300)
            },
            2,
        ),
    ]
}

/// Render the profiled sweep deterministically: a schema header, then
/// one flat line per (job, stack) with the merged per-phase counters.
/// Wall-clock nanoseconds never enter the rendering, so the output is
/// a pure function of the engine and byte-identical at any `--jobs`
/// count. Hard-fails — before any golden comparison — if any pinned
/// hot-path leaf phase allocated at all, or never ran.
fn profile_golden_render(threads: usize) -> Result<String, String> {
    let outcome = SweepRunner::new(threads)
        .with_timeline(DEFAULT_TIMELINE_INTERVAL_US)
        .with_profile()
        .run(profile_golden_jobs());
    let mut out = String::from("{\"golden_schema\":1,\"suite\":\"profile\"}\n");
    for item in &outcome.items {
        item.result
            .as_ref()
            .map_err(|e| format!("profile sweep: {e}"))?;
        let profile = item
            .profile
            .as_ref()
            .ok_or_else(|| format!("profile sweep: job {} produced no profile", item.label))?;
        for leaf in ZERO_ALLOC_PIN_LEAVES {
            let mut seen = false;
            for (path, s) in profile.phases() {
                if path.rsplit(';').next() != Some(*leaf) {
                    continue;
                }
                seen = true;
                if s.alloc_bytes != 0 || s.allocs != 0 {
                    return Err(format!(
                        "profile sweep: job {}: stack {path} allocated {} bytes \
                         over {} allocations; the {leaf} phase is pinned allocation-free",
                        item.label, s.alloc_bytes, s.allocs
                    ));
                }
            }
            if !seen {
                return Err(format!(
                    "profile sweep: job {} never entered a {leaf} stack \
                     (phase disabled, or the instrumentation moved?)",
                    item.label
                ));
            }
        }
        out.push_str(&profile_lines(&item.label, profile));
    }
    Ok(out)
}

/// A unified diff of the region around the first mismatching line:
/// two lines of context, `-` for the expected (committed) side, `+`
/// for the current run, long lines truncated. Gives drift reports an
/// actionable excerpt instead of a bare line number.
fn golden_diff(current: &str, expected: &str) -> String {
    let cur: Vec<&str> = current.lines().collect();
    let exp: Vec<&str> = expected.lines().collect();
    let n = cur.len().max(exp.len());
    let Some(first) = (0..n).find(|&i| cur.get(i) != exp.get(i)) else {
        return "files differ only in trailing bytes".to_string();
    };
    let clip = |s: &str| -> String {
        if s.len() <= 160 {
            return s.to_string();
        }
        let mut end = 160;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    };
    let start = first.saturating_sub(2);
    let end = (first + 3).min(n);
    let mut out = format!(
        "first difference at line {} ({} expected lines, {} current)\n\
         --- expected\n+++ current\n@@ lines {}-{} @@\n",
        first + 1,
        exp.len(),
        cur.len(),
        start + 1,
        end
    );
    for i in start..end {
        match (exp.get(i), cur.get(i)) {
            (Some(e), Some(c)) if e == c => {
                out.push_str(&format!(" {}\n", clip(e)));
            }
            (e, c) => {
                if let Some(e) = e {
                    out.push_str(&format!("-{}\n", clip(e)));
                }
                if let Some(c) = c {
                    out.push_str(&format!("+{}\n", clip(c)));
                }
            }
        }
    }
    out
}

/// `golden` subcommand: run a fixed sweep (`--suite smoke` is the
/// fault-free default; `--suite faults` runs the fault-injection
/// sweep) and byte-compare it against the committed golden file
/// (`--bless` rewrites the file instead). Any drift — an engine
/// change, a nondeterminism bug, a thread-count dependence — fails
/// the comparison with a unified diff of the first mismatch.
pub fn cmd_golden(args: &Args) -> Result<String, String> {
    let suite = args.get("suite").unwrap_or("smoke");
    let jobs: usize = args.get_parsed("jobs", 0)?;
    let (current, default_path) = match suite {
        "smoke" => (golden_render(golden_jobs(), jobs)?.0, GOLDEN_PATH),
        "faults" => (
            golden_render(faults_golden_jobs(), jobs)?.0,
            FAULTS_GOLDEN_PATH,
        ),
        "timeline" => (timeline_golden_render(jobs)?, TIMELINE_GOLDEN_PATH),
        "profile" => (profile_golden_render(jobs)?, PROFILE_GOLDEN_PATH),
        "chaos" => (
            crate::servecmd::chaos_golden_render(jobs)?,
            crate::servecmd::CHAOS_GOLDEN_PATH,
        ),
        "stats" => (
            crate::servecmd::stats_golden_render(jobs)?,
            crate::servecmd::STATS_GOLDEN_PATH,
        ),
        other => {
            return Err(format!(
                "--suite: expected smoke, faults, timeline, profile, chaos or stats, got {other:?}"
            ))
        }
    };
    let path = args.get("path").unwrap_or(default_path);
    let runs = current.lines().count() - 1;
    if args.flag("bless") {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("golden: cannot create {}: {e}", dir.display()))?;
            }
        }
        std::fs::write(path, &current).map_err(|e| format!("golden: cannot write {path}: {e}"))?;
        return Ok(format!("golden blessed: {path} ({runs} reports)\n"));
    }
    let expected = std::fs::read_to_string(path).map_err(|e| {
        format!("golden: cannot read {path}: {e}\nrun `semclusterctl golden --bless` to create it")
    })?;
    if current == expected {
        return Ok(format!("golden OK: {path} ({runs} reports)\n"));
    }
    Err(format!(
        "golden MISMATCH: {path}: {diff}\
         engine output drifted from the committed golden run; if the\n\
         change is intentional, re-bless with `semclusterctl golden --bless`",
        diff = golden_diff(&current, &expected)
    ))
}

/// The paper-scale sweep behind `bench-report --suite full` and the CI
/// `full-scale` job: Table 4.1's static parameters verbatim — a 500 MB
/// database (~1.6 M synthetic objects) under a 1000-page buffer pool —
/// run once per configuration with fixed seeds. Two configurations
/// bracket the paper's headline comparison: the unclustered LRU
/// baseline and the full semantic stack (no-limit clustering,
/// context-sensitive replacement, within-buffer prefetch, linear
/// splitting).
pub fn full_scale_jobs() -> Vec<SweepJob> {
    let paper = |seed: u64| SimConfig {
        workload: workload_from_label("med5-10").expect("known workload label"),
        seed,
        ..SimConfig::paper_scale()
    };
    vec![
        SweepJob::new(
            "full-baseline",
            SimConfig {
                clustering: ClusteringPolicy::NoCluster,
                split: SplitPolicy::NoSplit,
                ..paper(7100)
            },
            1,
        ),
        SweepJob::new(
            "full-clustered",
            SimConfig {
                clustering: ClusteringPolicy::NoLimit,
                replacement: ReplacementPolicy::ContextSensitive,
                prefetch: PrefetchScope::WithinBuffer,
                split: SplitPolicy::Linear,
                ..paper(7200)
            },
            1,
        ),
    ]
}

/// First free `BENCH_<n>.json` path in `dir`, counting up from 1.
fn next_bench_path(dir: &std::path::Path) -> std::path::PathBuf {
    (1u64..)
        .map(|n| dir.join(format!("BENCH_{n}.json")))
        .find(|p| !p.exists())
        .expect("some BENCH_<n>.json index below u64::MAX is free")
}

/// `bench-report` subcommand: run the fixed smoke sweep and write a
/// schema-stable perf snapshot. The file holds only simulated-time
/// statistics — byte-identical at any `--jobs` count — so two snapshots
/// from different machines or thread counts are directly comparable
/// with `obs diff`. Host wall-clock goes to stderr.
pub fn cmd_bench_report(args: &Args) -> Result<String, CliError> {
    let jobs: usize = args.get_parsed("jobs", 0)?;
    let suite = args.get("suite").unwrap_or("smoke");
    // `--suite full` appends the paper-scale jobs to the smoke sweep:
    // the smoke rows keep the snapshot joinable (`obs diff`) against
    // historical BENCH_<n> trajectory points, while the full-scale rows
    // are what the CI perf wall compares between baseline and PR.
    // `--suite serve` measures wall-clock serving throughput instead of
    // simulated time: it boots an in-process concurrent server and runs
    // a fixed fault-free load. The row still carries `mean_response_s`
    // so `obs diff` joins it against prior serve snapshots.
    if suite == "serve" {
        let body = crate::servecmd::bench_serve_render()?;
        let content = format!("{{\"bench_schema\":2,\"suite\":\"serve\"}}\n{body}");
        let path = match args.get("out") {
            Some(p) => std::path::PathBuf::from(p),
            None => next_bench_path(std::path::Path::new(".")),
        };
        std::fs::write(&path, &content)
            .map_err(|e| format!("bench-report: cannot write {}: {e}", path.display()))?;
        return Ok(format!(
            "bench report written to {} ({} reports)\n",
            path.display(),
            body.lines().count()
        ));
    }
    let sweep = match suite {
        "smoke" => golden_jobs(),
        "full" => {
            let mut s = golden_jobs();
            s.extend(full_scale_jobs());
            s
        }
        other => {
            return Err(CliError::general(format!(
                "bench-report: unknown suite {other:?} (expected smoke, full or serve)"
            )))
        }
    };
    // Schema 2 adds flat per-(job, stack) profile lines after each
    // job's report lines; `obs diff` reads them for regression
    // attribution and schema-1 readers skip them (no mean_response_s).
    let (body, summary, profile) = sweep_render(sweep, jobs, true)?;
    let content = format!("{{\"bench_schema\":2,\"suite\":{suite:?}}}\n{body}");
    let path = match args.get("out") {
        Some(p) => std::path::PathBuf::from(p),
        None => next_bench_path(std::path::Path::new(".")),
    };
    std::fs::write(&path, &content)
        .map_err(|e| format!("bench-report: cannot write {}: {e}", path.display()))?;
    let mut out = format!(
        "bench report written to {} ({} reports)\n",
        path.display(),
        body.lines().count() - 1
    );
    if let Some(folded_path) = args.get("folded") {
        let metric = match args.get("folded-metric") {
            None => FoldedMetric::SimUs,
            Some(m) => FoldedMetric::parse(m).ok_or_else(|| {
                format!(
                    "--folded-metric: expected wall_ns, sim_us, alloc_bytes, allocs or calls, \
                     got {m:?}"
                )
            })?,
        };
        let profile = profile.ok_or("bench-report: sweep produced no merged profile")?;
        std::fs::write(folded_path, profile.folded(metric))
            .map_err(|e| format!("--folded {folded_path}: cannot write file: {e}"))?;
        out.push_str(&format!("folded stacks written to {folded_path}\n"));
    }
    eprintln!("{}", summary.render());
    Ok(out)
}

/// Extract a `"key":"value"` string field from a single JSON line.
/// Good enough for the bench-report format, whose job labels never
/// contain escaped quotes.
pub(crate) fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extract a `"key":<number>` field from a single JSON line.
pub(crate) fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Bench-report schema versions this binary can read. Schema 1 is the
/// pre-profile-section format; schema 2 appended per-(job, stack)
/// profile lines.
const KNOWN_BENCH_SCHEMAS: [u64; 2] = [1, 2];

/// Read a bench-report file and validate its schema header. A missing
/// file exits with [`crate::error::EXIT_MISSING_INPUT`]; a missing or
/// unknown `bench_schema` header with [`crate::error::EXIT_BAD_SCHEMA`]
/// — distinct codes so the CI perf wall fails loudly, not confusingly.
fn read_bench_file(path: &str) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            CliError::missing_input(format!("obs diff: bench snapshot {path} does not exist"))
        } else {
            CliError::general(format!("obs diff: cannot read {path}: {e}"))
        }
    })?;
    let header = text.lines().next().unwrap_or("");
    let Some(schema) = json_num_field(header, "bench_schema") else {
        return Err(CliError::bad_schema(format!(
            "obs diff: {path}: first line carries no bench_schema header \
             (not a bench-report file?)"
        )));
    };
    if !KNOWN_BENCH_SCHEMAS.contains(&(schema as u64)) {
        return Err(CliError::bad_schema(format!(
            "obs diff: {path}: unknown bench_schema {} (this build reads {:?})",
            schema as u64, KNOWN_BENCH_SCHEMAS
        )));
    }
    Ok(text)
}

/// Load the per-replication mean response times out of a bench report:
/// `(job label/rep index, mean_response_s)` in file order.
fn load_bench(path: &str) -> Result<Vec<(String, f64)>, CliError> {
    let text = read_bench_file(path)?;
    let mut rows = Vec::new();
    for line in text.lines() {
        let (Some(job), Some(rep), Some(mean)) = (
            json_str_field(line, "job"),
            json_num_field(line, "rep"),
            json_num_field(line, "mean_response_s"),
        ) else {
            continue; // header / metrics lines
        };
        rows.push((format!("{job}/rep{rep}"), mean));
    }
    if rows.is_empty() {
        return Err(CliError::bad_schema(format!(
            "obs diff: {path}: no report lines found (not a bench-report file?)"
        )));
    }
    Ok(rows)
}

/// A snapshot's profile section, joined for attribution:
/// `(job, stack) → (sim_us, alloc_bytes)`.
type ProfileRows = std::collections::BTreeMap<(String, String), (f64, f64)>;

/// Load the per-(job, stack) profile counters out of a bench report.
/// Empty — not an error — for schema-1 snapshots, which predate the
/// profile section.
fn load_profile_section(path: &str) -> Result<ProfileRows, CliError> {
    let text = read_bench_file(path)?;
    let mut rows = std::collections::BTreeMap::new();
    for line in text.lines() {
        let (Some(job), Some(phase), Some(sim_us), Some(alloc_bytes)) = (
            json_str_field(line, "job"),
            json_str_field(line, "phase"),
            json_num_field(line, "sim_us"),
            json_num_field(line, "alloc_bytes"),
        ) else {
            continue; // header / report / metrics lines
        };
        rows.insert((job, phase), (sim_us, alloc_bytes));
    }
    Ok(rows)
}

/// Attribute regressed jobs to phases: for each job, the stacks with
/// the largest simulated-time delta and the largest allocation delta
/// between the two snapshots' profile sections.
fn profile_attribution(
    jobs: &std::collections::BTreeSet<String>,
    base: &ProfileRows,
    cur: &ProfileRows,
) -> String {
    const TOP_K: usize = 3;
    if base.is_empty() || cur.is_empty() {
        return "no profile section in one of the snapshots (bench_schema 1?); \
                re-run bench-report for per-phase attribution\n"
            .to_string();
    }
    let mut out = String::new();
    for job in jobs {
        // Union of the job's stacks across both snapshots: a phase that
        // appeared or vanished is itself a lead worth surfacing.
        let mut deltas: Vec<(&str, f64, f64)> = Vec::new();
        for ((j, phase), &(base_sim, base_bytes)) in base {
            if j != job {
                continue;
            }
            let (cur_sim, cur_bytes) = cur
                .get(&(j.clone(), phase.clone()))
                .copied()
                .unwrap_or((0.0, 0.0));
            deltas.push((phase, cur_sim - base_sim, cur_bytes - base_bytes));
        }
        for ((j, phase), &(cur_sim, cur_bytes)) in cur {
            if j != job || base.contains_key(&(j.clone(), phase.clone())) {
                continue;
            }
            deltas.push((phase, cur_sim, cur_bytes));
        }
        if deltas.is_empty() {
            continue;
        }
        let mut by_sim = deltas.clone();
        by_sim.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
        let mut by_bytes = deltas.clone();
        by_bytes.sort_by(|a, b| b.2.abs().total_cmp(&a.2.abs()));
        let mut picks: Vec<&str> = Vec::new();
        for (phase, d_sim, d_bytes) in by_sim.iter().take(TOP_K).chain(by_bytes.iter().take(TOP_K))
        {
            if (*d_sim != 0.0 || *d_bytes != 0.0) && !picks.contains(phase) {
                picks.push(phase);
            }
        }
        if picks.is_empty() {
            out.push_str(&format!(
                "job {job}: no phase counter moved — the regression is outside the profiled paths\n"
            ));
            continue;
        }
        out.push_str(&format!(
            "job {job}: top phases by simulated-time / allocation delta\n"
        ));
        for phase in picks {
            let (_, d_sim, d_bytes) = deltas
                .iter()
                .find(|d| d.0 == phase)
                .expect("picked from deltas");
            out.push_str(&format!(
                "  {phase:<44} sim_us {d_sim:+12.0}   alloc_bytes {d_bytes:+12.0}\n"
            ));
        }
    }
    out
}

/// `obs` subcommand. `obs diff BASELINE.json CURRENT.json` compares two
/// bench-report snapshots run-by-run and fails (exit 1) when any run's
/// mean response time regressed beyond `--threshold` percent, naming
/// the phases whose simulated-time and allocation counters moved most.
pub fn cmd_obs(args: &Args) -> Result<String, CliError> {
    match args.positional.first().map(String::as_str) {
        Some("diff") => {}
        other => {
            return Err(CliError::general(format!(
                "obs: expected `diff BASELINE CURRENT`, got {other:?}"
            )))
        }
    }
    let (Some(base_path), Some(cur_path)) = (args.positional.get(1), args.positional.get(2)) else {
        return Err("obs diff: need two bench-report paths (baseline, then current)".into());
    };
    let threshold: f64 = args.get_parsed("threshold", 5.0)?;
    let base = load_bench(base_path)?;
    let cur: std::collections::BTreeMap<String, f64> = load_bench(cur_path)?.into_iter().collect();
    let mut table = Table::new(vec!["run", "baseline (ms)", "current (ms)", "delta"]);
    let mut compared = 0usize;
    let mut regressions = 0usize;
    let mut regressed_jobs = std::collections::BTreeSet::new();
    for (key, was) in &base {
        let Some(now) = cur.get(key) else { continue };
        compared += 1;
        let delta = if *was > 0.0 {
            (now - was) / was * 100.0
        } else {
            0.0
        };
        let marker = if delta > threshold {
            regressions += 1;
            // Run keys are "<job>/rep<n>"; attribution works on the
            // job's merged profile, so fold the replications back up.
            regressed_jobs.insert(
                key.rsplit_once("/rep")
                    .map_or_else(|| key.clone(), |(job, _)| job.to_string()),
            );
            "  REGRESSION"
        } else {
            ""
        };
        table.row(vec![
            key.clone(),
            format!("{:.2}", was * 1e3),
            format!("{:.2}", now * 1e3),
            format!("{delta:+.1} %{marker}"),
        ]);
    }
    if compared == 0 {
        return Err("obs diff: the two reports share no runs".into());
    }
    let mut out = format!("perf diff {base_path} → {cur_path} (threshold {threshold:.1} %)\n");
    out.push_str(&table.render());
    if regressions > 0 {
        let attribution = profile_attribution(
            &regressed_jobs,
            &load_profile_section(base_path)?,
            &load_profile_section(cur_path)?,
        );
        return Err(CliError::general(format!(
            "{out}{attribution}{regressions} of {compared} runs regressed beyond +{threshold:.1} %"
        )));
    }
    out.push_str(&format!(
        "{compared} runs compared, none slower than +{threshold:.1} %\n"
    ));
    Ok(out)
}

/// `crash-matrix` subcommand: run the exhaustive crash-recovery matrix
/// and fail (exit 1) on any ACID violation.
pub fn cmd_crash_matrix(args: &Args) -> Result<String, String> {
    let preset = args.get("preset").unwrap_or("smoke");
    let mut mc = match preset {
        "smoke" => CrashMatrixConfig::smoke(),
        "deep" => CrashMatrixConfig::deep(),
        other => return Err(format!("--preset: expected smoke or deep, got {other:?}")),
    };
    mc.event_samples = args.get_parsed("samples", mc.event_samples)?;
    mc.jobs = args.get_parsed("jobs", mc.jobs)?;
    mc.cfg.seed = args.get_parsed("seed", mc.cfg.seed)?;
    if let Some(dir) = args.get("scratch-dir") {
        mc.scratch_dir = Some(std::path::PathBuf::from(dir));
    }
    let backends = match args.get("backend").unwrap_or("sim") {
        "sim" => vec![MatrixBackend::Sim],
        "file" => vec![MatrixBackend::File],
        "both" => vec![MatrixBackend::Sim, MatrixBackend::File],
        other => {
            return Err(format!(
                "--backend: expected sim, file or both, got {other:?}"
            ))
        }
    };
    let labelled = backends.len() > 1;
    let mut out = String::new();
    for backend in backends {
        mc.backend = backend;
        let report = run_crash_matrix(&mc);
        if report.violation_count() > 0 {
            return Err(format!("backend {}:\n{}", backend.name(), report.render()));
        }
        if args.flag("json") {
            out.push_str(&format!(
                concat!(
                    "{{\"backend\":{backend:?},\"points\":{points},",
                    "\"commits\":{commits},\"events\":{events},",
                    "\"log_flushes\":{flushes},\"violations\":{violations}}}\n"
                ),
                backend = backend.name(),
                points = report.points.len(),
                commits = report.total_commits,
                events = report.total_events,
                flushes = report.total_flushes,
                violations = report.violation_count(),
            ));
        } else {
            if labelled {
                out.push_str(&format!("== backend {} ==\n", backend.name()));
            }
            out.push_str(&report.render());
        }
    }
    Ok(out)
}

/// Dispatch a parsed command line. Errors carry a process exit code:
/// `1` for ordinary failures, `3` when a required input file is
/// missing, `4` when an input file has an unknown schema version,
/// `5` when a network operation fails, `6` when a peer violates the
/// wire protocol, `7` when the serve-path ACID verdict finds acked
/// transactions that did not survive recovery.
pub fn dispatch(args: &Args) -> Result<String, CliError> {
    match args.command.as_deref() {
        Some("simulate") => cmd_simulate(args).map_err(CliError::from),
        Some("explain") => cmd_explain(args).map_err(CliError::from),
        Some("explain-placement") => cmd_explain_placement(args).map_err(CliError::from),
        Some("trace") => cmd_trace(args).map_err(CliError::from),
        Some("inspect") => cmd_inspect(args).map_err(CliError::from),
        Some("reorg") => cmd_reorg(args).map_err(CliError::from),
        Some("golden") => cmd_golden(args).map_err(CliError::from),
        Some("bench-report") => cmd_bench_report(args),
        Some("serve") => crate::servecmd::cmd_serve(args),
        Some("load") => crate::servecmd::cmd_load(args),
        Some("top") => crate::topcmd::cmd_top(args),
        Some("obs") => cmd_obs(args),
        Some("crash-matrix") => cmd_crash_matrix(args).map_err(CliError::from),
        Some("help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(CliError::general(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn policy_parsers() {
        assert_eq!(
            parse_clustering("2io").unwrap(),
            ClusteringPolicy::IoLimit(2)
        );
        assert_eq!(
            parse_clustering("7io").unwrap(),
            ClusteringPolicy::IoLimit(7)
        );
        assert_eq!(
            parse_clustering("adaptive").unwrap(),
            ClusteringPolicy::Adaptive
        );
        assert!(parse_clustering("bogus").is_err());
        assert_eq!(
            parse_replacement("ctx").unwrap(),
            ReplacementPolicy::ContextSensitive
        );
        assert_eq!(parse_prefetch("db").unwrap(), PrefetchScope::WithinDatabase);
        assert_eq!(parse_split("np").unwrap(), SplitPolicy::Optimal);
    }

    #[test]
    fn config_from_flags() {
        let args = parse(
            "simulate --workload hi10-100 --clustering nolimit --replacement ctx \
             --prefetch db --split linear --buffer-pages 50 --seed 3 --txns 100",
        );
        let cfg = config_from_args(&args).unwrap();
        assert_eq!(cfg.workload.label(), "hi10-100");
        assert_eq!(cfg.clustering, ClusteringPolicy::NoLimit);
        assert_eq!(cfg.replacement, ReplacementPolicy::ContextSensitive);
        assert_eq!(cfg.buffer_pages, 50);
        assert_eq!(cfg.measured_txns, 100);
    }

    #[test]
    fn bad_flags_error() {
        assert!(config_from_args(&parse("simulate --workload nope")).is_err());
        assert!(config_from_args(&parse("simulate --clustering nope")).is_err());
        assert!(dispatch(&parse("frobnicate")).is_err());
        assert!(dispatch(&parse("bench-report --suite nope")).is_err());
    }

    #[test]
    fn paper_scale_flag_starts_from_table_4_1() {
        let cfg = config_from_args(&parse("simulate --paper-scale --preset med5-10")).unwrap();
        let paper = SimConfig::paper_scale();
        assert_eq!(cfg.buffer_pages, paper.buffer_pages);
        assert_eq!(cfg.database_bytes, paper.database_bytes);
        assert_eq!(cfg.workload.label(), "med5-10");
        // Other flags still override the paper values.
        let cfg = config_from_args(&parse("simulate --paper-scale --buffer-pages 64")).unwrap();
        assert_eq!(cfg.buffer_pages, 64);
    }

    #[test]
    fn help_and_trace_render() {
        let out = dispatch(&parse("help")).unwrap();
        assert!(out.contains("simulate"));
        let out = dispatch(&parse("trace --invocations 3 --seed 1")).unwrap();
        assert!(out.contains("vem"));
    }

    #[test]
    fn simulate_json_smoke() {
        let out = dispatch(&parse(
            "simulate --workload low3-5 --txns 60 --buffer-pages 16 --json --reps 1",
        ));
        // A tiny run must produce a JSON array with the key metrics.
        let out = out.unwrap();
        assert!(out.starts_with('[') && out.ends_with(']'));
        assert!(out.contains("\"mean_response_s\""));
        assert!(out.contains("\"hit_ratio\""));
    }

    #[test]
    fn preset_aliases_workload() {
        let cfg = config_from_args(&parse("simulate --preset hi10-100")).unwrap();
        assert_eq!(cfg.workload.label(), "hi10-100");
        // --workload wins when both are given.
        let cfg = config_from_args(&parse("simulate --workload low3-5 --preset hi10-100")).unwrap();
        assert_eq!(cfg.workload.label(), "low3-5");
    }

    #[test]
    fn simulate_trace_and_metrics() {
        let dir = std::env::temp_dir().join("semcluster-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        let path = path.to_str().unwrap();
        let out = dispatch(&parse(&format!(
            "simulate --preset low3-5 --txns 60 --buffer-pages 16 \
             --trace {path} --metrics json"
        )))
        .unwrap();
        // Combined JSON object with report + registry snapshot.
        assert!(out.starts_with("{\"report\":"));
        assert!(out.contains("\"metrics\":"));
        assert!(out.contains("\"counters\""));
        assert!(out.contains("buffer.miss"));
        // Trace file holds one JSON object per line, in event-time order.
        let trace = std::fs::read_to_string(path).unwrap();
        assert!(trace.lines().count() > 60);
        for line in trace.lines().take(50) {
            assert!(line.starts_with("{\"t\":") && line.ends_with('}'));
            assert!(line.contains("\"ev\":"));
        }
        assert!(trace.contains("\"ev\":\"txn_commit\""));
        std::fs::remove_file(path).unwrap();

        let out = dispatch(&parse(
            "simulate --preset low3-5 --txns 60 --buffer-pages 16 --metrics table",
        ))
        .unwrap();
        assert!(out.contains("buffer.hit"));
        assert!(out.contains("counter"));
    }

    #[test]
    fn explain_attributes_response() {
        let out = dispatch(&parse(
            "explain --preset low3-5 --txns 60 --buffer-pages 16",
        ))
        .unwrap();
        assert!(out.contains("response-time attribution"));
        assert!(out.contains("demand reads"));
        assert!(out.contains("total response"));
        let out = dispatch(&parse(
            "explain --preset low3-5 --txns 60 --buffer-pages 16 --json",
        ))
        .unwrap();
        assert!(out.contains("\"data_read_s\""));
        assert!(out.contains("\"think_s\""));
    }

    #[test]
    fn simulate_jobs_is_thread_count_invariant() {
        let run = |jobs: u32| {
            dispatch(&parse(&format!(
                "simulate --preset low3-5 --txns 60 --buffer-pages 16 \
                 --json --reps 3 --jobs {jobs}"
            )))
            .unwrap()
        };
        let serial = run(1);
        assert_eq!(serial, run(3), "--jobs must not change the output");
        // Three replications, each a distinct seed → distinct reports.
        assert_eq!(serial.matches("\"mean_response_s\"").count(), 3);
    }

    #[test]
    fn simulate_rejects_zero_reps() {
        let err = dispatch(&parse("simulate --preset low3-5 --reps 0")).unwrap_err();
        assert!(err.contains("at least one replication"));
    }

    #[test]
    fn golden_bless_check_and_drift() {
        let dir = std::env::temp_dir().join("semcluster-golden-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("smoke.json");
        let path = path.to_str().unwrap();

        // Checking against a missing file explains how to create it.
        let _ = std::fs::remove_file(path);
        let err = dispatch(&parse(&format!("golden --path {path}"))).unwrap_err();
        assert!(err.contains("--bless"));

        let out = dispatch(&parse(&format!("golden --bless --path {path} --jobs 2"))).unwrap();
        assert!(out.contains("golden blessed"));
        let blessed = std::fs::read_to_string(path).unwrap();
        assert!(blessed.lines().count() > 6);
        assert!(blessed.contains("\"job\":\"baseline\""));
        assert!(blessed.contains("\"job\":\"write-heavy-random\""));
        assert!(blessed.lines().last().unwrap().starts_with("{\"metrics\":"));

        // A re-run at a different thread count byte-matches.
        let out = dispatch(&parse(&format!("golden --path {path} --jobs 1"))).unwrap();
        assert!(out.contains("golden OK"));

        // Any byte drift fails the check with a pointer to the line.
        std::fs::write(path, blessed.replacen("\"rep\":0", "\"rep\":9", 1)).unwrap();
        let err = dispatch(&parse(&format!("golden --path {path}"))).unwrap_err();
        assert!(err.contains("golden MISMATCH"));
        assert!(err.contains("first difference at line 1"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn simulate_chrome_trace_and_timeline() {
        let dir = std::env::temp_dir().join("semcluster-cli-obs2-test");
        std::fs::create_dir_all(&dir).unwrap();
        let chrome = dir.join("trace.json");
        let chrome = chrome.to_str().unwrap();
        let timeline = dir.join("timeline.json");
        let timeline = timeline.to_str().unwrap();

        let out = dispatch(&parse(&format!(
            "simulate --preset low3-5 --txns 60 --buffer-pages 16 \
             --chrome-trace {chrome} --timeline {timeline}"
        )))
        .unwrap();
        assert!(out.contains("timeline written to"));
        assert!(out.contains("chrome trace written to"));

        // The Chrome trace is one JSON array with process metadata and
        // at least one transaction span.
        let trace = std::fs::read_to_string(chrome).unwrap();
        assert!(trace.starts_with("[\n"));
        assert!(trace.ends_with("]\n"));
        assert!(trace.contains("\"process_name\""));
        assert!(trace.contains("\"ph\":\"B\""));
        assert!(trace.contains("\"ph\":\"X\""));

        // The timeline holds interval-aligned samples with the locality
        // and queue-depth fields.
        let tl = std::fs::read_to_string(timeline).unwrap();
        assert!(tl.starts_with("{\"interval_us\":1000000,"));
        assert!(tl.contains("\"loc_on_page\""));
        assert!(tl.contains("\"queue_us\""));
        std::fs::remove_file(chrome).unwrap();
        std::fs::remove_file(timeline).unwrap();

        // The two trace formats are mutually exclusive.
        let err = dispatch(&parse(&format!(
            "simulate --preset low3-5 --trace a.jsonl --chrome-trace {chrome}"
        )))
        .unwrap_err();
        assert!(err.contains("mutually exclusive"));

        // A zero sampling interval is rejected.
        let err = dispatch(&parse(&format!(
            "simulate --preset low3-5 --timeline {timeline} --timeline-interval-us 0"
        )))
        .unwrap_err();
        assert!(err.contains("must be positive"));
    }

    #[test]
    fn explain_placement_table_and_json() {
        let out = dispatch(&parse(
            "explain-placement --preset med5-10 --clustering nolimit --split linear \
             --txns 80 --buffer-pages 16 --last 8",
        ))
        .unwrap();
        assert!(out.contains("placement decisions"));
        assert!(out.contains("chosen→landed"));

        let out = dispatch(&parse(
            "explain-placement --preset med5-10 --clustering nolimit --split linear \
             --txns 80 --buffer-pages 16 --last 8 --json",
        ))
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(!lines.is_empty() && lines.len() <= 8);
        for line in &lines {
            assert!(line.starts_with("{\"t\":"));
            assert!(line.contains("\"candidates\":["));
            assert!(line.contains("\"search_ios\":"));
        }
        assert!(dispatch(&parse("explain-placement --last 0")).is_err());
    }

    #[test]
    fn obs_diff_compares_bench_reports() {
        let dir = std::env::temp_dir().join("semcluster-obs-diff-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("BENCH_1.json");
        let b = dir.join("BENCH_2.json");
        let base = "{\"bench_schema\":1,\"suite\":\"smoke\"}\n\
            {\"job\":\"baseline\",\"rep\":0,\"report\":{\"config\":\"x\",\"mean_response_s\":0.010000}}\n\
            {\"job\":\"baseline\",\"rep\":1,\"report\":{\"config\":\"x\",\"mean_response_s\":0.020000}}\n\
            {\"metrics\":{}}\n";
        std::fs::write(&a, base).unwrap();

        // Identical snapshots pass.
        std::fs::write(&b, base).unwrap();
        let cmd = format!("obs diff {} {}", a.display(), b.display());
        let out = dispatch(&parse(&cmd)).unwrap();
        assert!(out.contains("none slower"));

        // A >5% mean-response regression fails with a marked row.
        std::fs::write(&b, base.replace("0.020000", "0.030000")).unwrap();
        let err = dispatch(&parse(&cmd)).unwrap_err();
        assert!(err.contains("REGRESSION"));
        assert!(err.contains("1 of 2 runs regressed"));

        // A generous threshold lets the same pair pass.
        let out = dispatch(&parse(&format!("{cmd} --threshold 60"))).unwrap();
        assert!(out.contains("none slower"));

        // Improvements never fail, whatever the threshold.
        std::fs::write(&b, base.replace("0.020000", "0.002000")).unwrap();
        let out = dispatch(&parse(&cmd)).unwrap();
        assert!(out.contains("none slower"));

        assert!(dispatch(&parse("obs diff missing-a.json missing-b.json")).is_err());
        assert!(dispatch(&parse("obs frobnicate")).is_err());
        std::fs::remove_file(&a).unwrap();
        std::fs::remove_file(&b).unwrap();
    }

    #[test]
    fn bench_report_writes_snapshot() {
        let dir = std::env::temp_dir().join("semcluster-bench-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("BENCH_T.json");
        let out_path_s = out_path.to_str().unwrap();
        let _ = std::fs::remove_file(&out_path);
        let out = dispatch(&parse(&format!("bench-report --out {out_path_s} --jobs 2"))).unwrap();
        assert!(out.contains("bench report written to"));
        let content = std::fs::read_to_string(&out_path).unwrap();
        assert!(content.starts_with("{\"bench_schema\":2,\"suite\":\"smoke\"}\n"));
        assert!(content.contains("\"job\":\"baseline\""));
        // Schema 2 interleaves per-phase profile lines with the reports.
        assert!(content.contains("\"phase\":\"run;buffer_lookup\""));
        assert!(content.lines().last().unwrap().starts_with("{\"metrics\":"));
        // The snapshot diffs cleanly against itself.
        let out = dispatch(&parse(&format!("obs diff {out_path_s} {out_path_s}"))).unwrap();
        assert!(out.contains("none slower"));
        std::fs::remove_file(&out_path).unwrap();
    }

    #[test]
    fn next_bench_path_skips_existing() {
        let dir = std::env::temp_dir().join("semcluster-bench-path-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_bench_path(&dir), dir.join("BENCH_1.json"));
        std::fs::write(dir.join("BENCH_1.json"), "x").unwrap();
        assert_eq!(next_bench_path(&dir), dir.join("BENCH_2.json"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn timeline_golden_bless_and_thread_invariance() {
        let dir = std::env::temp_dir().join("semcluster-timeline-golden-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("timeline_smoke.json");
        let path = path.to_str().unwrap();

        let out = dispatch(&parse(&format!(
            "golden --suite timeline --bless --path {path} --jobs 2"
        )))
        .unwrap();
        assert!(out.contains("golden blessed"));
        let blessed = std::fs::read_to_string(path).unwrap();
        assert!(blessed.contains("\"job\":\"tl-baseline\""));
        assert!(blessed.contains("\"job\":\"tl-faults\""));
        assert!(blessed.lines().last().unwrap().starts_with("{\"merged\":"));

        // A serial re-run byte-matches the 2-thread bless.
        let out = dispatch(&parse(&format!(
            "golden --suite timeline --path {path} --jobs 1"
        )))
        .unwrap();
        assert!(out.contains("golden OK"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn inspect_and_reorg_smoke() {
        let out = dispatch(&parse("inspect --mbytes 1 --workload low3-5")).unwrap();
        assert!(out.contains("configuration edges"));
        assert!(out.contains("layout improvement"));
        let out = dispatch(&parse("reorg --modules 4")).unwrap();
        assert!(out.contains("repaired"));
    }
}
