//! Minimal dependency-free flag parsing.

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional arguments and
/// `--key value` / `--flag` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
    options: HashMap<String, String>,
}

impl Args {
    /// Parse an argument list (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = argv.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if key.is_empty() {
                    return Err("stray `--`".into());
                }
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().expect("peeked"),
                    _ => "true".to_string(),
                };
                args.options.insert(key.to_string(), value);
            } else if args.command.is_none() {
                args.command = Some(arg);
            } else {
                args.positional.push(arg);
            }
        }
        Ok(args)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Typed option with default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    /// Boolean flag (present means true).
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn command_options_positionals() {
        let a = parse("simulate --workload hi10-100 --reps 3 extra");
        assert_eq!(a.command.as_deref(), Some("simulate"));
        assert_eq!(a.get("workload"), Some("hi10-100"));
        assert_eq!(a.get_parsed("reps", 1u32).unwrap(), 3);
        assert_eq!(a.positional, vec!["extra"]);
    }

    #[test]
    fn flags_without_values() {
        let a = parse("simulate --json --seed 9");
        assert!(a.flag("json"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.get_parsed("seed", 0u64).unwrap(), 9);
    }

    #[test]
    fn defaults_and_errors() {
        let a = parse("trace");
        assert_eq!(a.get_parsed("invocations", 10usize).unwrap(), 10);
        let a = parse("simulate --reps nope");
        assert!(a.get_parsed("reps", 1u32).is_err());
    }
}
