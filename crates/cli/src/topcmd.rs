//! The `top` subcommand: a polling terminal view over a live server's
//! STATS opcode.
//!
//! `top` opens one client connection, sends a STATS frame every
//! `--interval-ms`, and renders a one-line-per-tick view of the
//! server's live telemetry: cumulative progress counters, instantaneous
//! gauges, and the server-maintained rolling SLO window (p50/p99,
//! error rate). Throughput is differenced client-side from consecutive
//! cumulative snapshots; everything else is reported exactly as the
//! server snapshot carries it. `--raw` skips the table and prints each
//! snapshot's JSON verbatim, which is what scripts should consume.

use std::net::TcpStream;
use std::time::Duration;

use crate::args::Args;
use crate::commands::json_num_field;
use crate::error::CliError;
use semcluster::serve::{read_frame, write_frame, Request, Response, ServeError, STATS_SCHEMA};

/// The fields `top` extracts from one snapshot. Parsed leniently:
/// a missing field renders as 0 rather than failing the poll loop.
struct TopSample {
    uptime_ms: u64,
    txn_ok: u64,
    errors: u64,
    queue_depth: u64,
    sessions_live: u64,
    draining: u64,
    p50_us: u64,
    p99_us: u64,
    error_ppm: u64,
    shed_ppm: u64,
}

/// Error-counter keys summed into the `errors` column.
const ERR_KEYS: [&str; 6] = [
    "err.overloaded",
    "err.deadline",
    "err.malformed",
    "err.shutting_down",
    "err.retry_exhausted",
    "err.internal",
];

impl TopSample {
    fn parse(json: &str) -> TopSample {
        let field = |key: &str| json_num_field(json, key).unwrap_or(0.0) as u64;
        // The SLO section repeats no counter/gauge names, and the
        // latency histograms carry no quantile fields, so flat key
        // lookups over the whole snapshot are unambiguous.
        TopSample {
            uptime_ms: field("uptime_ms"),
            txn_ok: field("txn_ok"),
            errors: ERR_KEYS.iter().map(|k| field(k)).sum(),
            queue_depth: field("queue_depth"),
            sessions_live: field("sessions_live"),
            draining: field("draining"),
            p50_us: field("p50_us"),
            p99_us: field("p99_us"),
            error_ppm: field("error_ppm"),
            shed_ppm: field("shed_ppm"),
        }
    }
}

/// One poll: STATS out, StatsOk in.
fn poll(stream: &mut TcpStream) -> Result<String, CliError> {
    write_frame(stream, &Request::Stats.encode())
        .map_err(|e| net_err("sending STATS", &e.to_string()))?;
    let frame = read_frame(stream)
        .map_err(|e| net_err("awaiting StatsOk", &e.to_string()))?
        .ok_or_else(|| net_err("awaiting StatsOk", "server closed the connection"))?;
    match Response::parse(&frame) {
        Ok(Response::StatsOk { schema, json }) => {
            if schema != STATS_SCHEMA {
                return Err(CliError::bad_schema(format!(
                    "top: server speaks stats schema {schema}, this build reads {STATS_SCHEMA}"
                )));
            }
            Ok(json)
        }
        Ok(other) => Err(CliError::from_serve(&ServeError::Internal(format!(
            "top: expected StatsOk, got {other:?}"
        )))),
        Err(e) => Err(CliError::from_serve(&ServeError::Protocol(e))),
    }
}

fn net_err(context: &str, source: &str) -> CliError {
    CliError::from_serve(&ServeError::Net {
        context: context.to_string(),
        source: source.to_string(),
    })
}

/// `top` subcommand entry point. Lines stream to stdout as they are
/// sampled (this is a live view); the returned string is just the
/// closing summary.
pub fn cmd_top(args: &Args) -> Result<String, CliError> {
    let addr = args
        .get("addr")
        .ok_or_else(|| CliError::general("top: --addr HOST:PORT is required"))?;
    let interval_ms: u64 = args.get_parsed("interval-ms", 1000u64)?;
    let count: u64 = args.get_parsed("count", 0u64)?;
    let raw = args.flag("raw");
    let mut stream = TcpStream::connect(addr).map_err(|e| net_err("connecting", &e.to_string()))?;
    stream
        .set_read_timeout(Some(Duration::from_millis(interval_ms.max(1_000) + 30_000)))
        .map_err(|e| net_err("configuring socket", &e.to_string()))?;
    use std::io::Write as _;
    if !raw {
        println!(
            "{:>10} {:>8} {:>10} {:>8} {:>6} {:>6} {:>9} {:>9} {:>8} {:>8}  state",
            "uptime_ms",
            "txn/s",
            "txn_ok",
            "errors",
            "queue",
            "sess",
            "p50_us",
            "p99_us",
            "err_ppm",
            "shed_ppm"
        );
    }
    let mut prev: Option<TopSample> = None;
    let mut ticks = 0u64;
    loop {
        let json = poll(&mut stream)?;
        if raw {
            print!("{json}");
        } else {
            let s = TopSample::parse(&json);
            // Throughput differences consecutive cumulative snapshots
            // over the *server's* uptime delta, so a slow poll loop
            // cannot inflate the rate.
            let rate = match &prev {
                Some(p) if s.uptime_ms > p.uptime_ms => {
                    (s.txn_ok.saturating_sub(p.txn_ok)) as f64
                        / ((s.uptime_ms - p.uptime_ms) as f64 / 1e3)
                }
                _ => 0.0,
            };
            println!(
                "{:>10} {:>8.1} {:>10} {:>8} {:>6} {:>6} {:>9} {:>9} {:>8} {:>8}  {}",
                s.uptime_ms,
                rate,
                s.txn_ok,
                s.errors,
                s.queue_depth,
                s.sessions_live,
                s.p50_us,
                s.p99_us,
                s.error_ppm,
                s.shed_ppm,
                if s.draining == 1 {
                    "draining"
                } else {
                    "serving"
                }
            );
            prev = Some(s);
        }
        std::io::stdout().flush().ok();
        ticks += 1;
        if count > 0 && ticks >= count {
            break;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
    // Best-effort polite goodbye; the view is already complete.
    if write_frame(&mut stream, &Request::Bye.encode()).is_ok() {
        let _ = read_frame(&mut stream);
    }
    Ok(format!("top: {ticks} sample(s) from {addr}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_parses_a_snapshot_render() {
        let json = "{\"stats_schema\":1,\n\
                    \"uptime_ms\":480,\n\
                    \"counters\":{\"req.txn\":9,\"err.overloaded\":2,\"err.deadline\":1,\
                    \"txn_ok\":6,\"acked\":4},\n\
                    \"gauges\":{\"queue_depth\":3,\"sessions_live\":16,\"draining\":1},\n\
                    \"latency_us\":{},\n\
                    \"slo\":{\"window_ticks\":5,\"requests\":6,\"errors\":3,\"sheds\":2,\
                    \"p50_us\":120,\"p99_us\":900,\"error_ppm\":333333,\"shed_ppm\":222222}}\n";
        let s = TopSample::parse(json);
        assert_eq!(s.uptime_ms, 480);
        assert_eq!(s.txn_ok, 6);
        assert_eq!(s.errors, 3, "error kinds summed");
        assert_eq!(s.queue_depth, 3);
        assert_eq!(s.sessions_live, 16);
        assert_eq!(s.draining, 1);
        assert_eq!(s.p50_us, 120);
        assert_eq!(s.p99_us, 900);
        assert_eq!(s.error_ppm, 333_333);
        assert_eq!(s.shed_ppm, 222_222);
    }

    #[test]
    fn top_requires_an_addr() {
        let args = Args::parse(["top"].into_iter().map(String::from)).unwrap();
        assert!(cmd_top(&args).is_err());
    }
}
