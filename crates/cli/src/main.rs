//! `semclusterctl` — command-line interface to the semcluster simulator.
//!
//! ```sh
//! semclusterctl simulate --workload hi10-100 --clustering nolimit --replacement ctx
//! semclusterctl trace --invocations 100
//! semclusterctl inspect --workload med5-10 --mbytes 16
//! semclusterctl reorg --modules 30
//! ```

use semcluster_cli::{dispatch, Args, USAGE};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    match dispatch(&parsed) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
