//! `semclusterctl` — command-line interface to the semcluster simulator.
//!
//! ```sh
//! semclusterctl simulate --workload hi10-100 --clustering nolimit --replacement ctx
//! semclusterctl trace --invocations 100
//! semclusterctl inspect --workload med5-10 --mbytes 16
//! semclusterctl reorg --modules 30
//! ```

use semcluster_cli::{dispatch, Args, USAGE};

/// Thread-local allocation accounting for `simulate --profile` and the
/// profile golden suite. The wrapper forwards straight to the system
/// allocator, so binaries that register it pay two thread-local
/// increments per allocation and nothing else; binaries that don't
/// simply report zero allocation counts.
#[global_allocator]
static ALLOC: semcluster_obs::CountingAlloc = semcluster_obs::CountingAlloc;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    match dispatch(&parsed) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            // Exit codes: 1 general failure, 2 argv parse error, 3
            // missing input file, 4 unknown input schema, 5 network
            // unavailable, 6 protocol violation, 7 ACID violation.
            eprintln!("error: {e}");
            std::process::exit(e.code);
        }
    }
}
