//! Property-based tests for the lock manager.

use proptest::prelude::*;
use semcluster_lock::{LockManager, LockMode, LockResult, TxnId};
use semcluster_vdm::ObjectId;

fn modes() -> impl Strategy<Value = LockMode> {
    prop_oneof![
        Just(LockMode::IntentionShared),
        Just(LockMode::IntentionExclusive),
        Just(LockMode::Shared),
        Just(LockMode::SharedIntentionExclusive),
        Just(LockMode::Exclusive),
    ]
}

proptest! {
    /// Safety invariant: after any request/release interleaving, the
    /// holders of every object are pairwise compatible (or the same
    /// transaction).
    #[test]
    fn holders_always_pairwise_compatible(
        script in proptest::collection::vec(
            (0u64..6, 0u32..8, modes(), any::<bool>()),
            1..200,
        ),
    ) {
        let mut lm = LockManager::new();
        let mut live: std::collections::HashSet<TxnId> = (0..6).map(TxnId).collect();
        for (txn_raw, obj, mode, release) in script {
            let txn = TxnId(txn_raw);
            if release {
                lm.release_all(txn);
                live.insert(txn);
                continue;
            }
            if !live.contains(&txn) {
                continue;
            }
            match lm.request(txn, ObjectId(obj), mode) {
                LockResult::Granted | LockResult::Waiting => {}
                LockResult::Deadlock => {
                    // Victim aborts entirely.
                    lm.cancel_wait(txn, ObjectId(obj));
                    lm.release_all(txn);
                }
            }
            // Validate pairwise compatibility over all objects by probing
            // held modes through the public API.
            for o in 0..8u32 {
                let holders: Vec<(TxnId, LockMode)> = (0..6)
                    .filter_map(|t| {
                        lm.held_mode(TxnId(t), ObjectId(o)).map(|m| (TxnId(t), m))
                    })
                    .collect();
                for (i, &(ta, ma)) in holders.iter().enumerate() {
                    for &(tb, mb) in &holders[i + 1..] {
                        prop_assert!(
                            ta == tb || ma.compatible(mb),
                            "incompatible co-holders {ta}:{ma} and {tb}:{mb} on o{o}"
                        );
                    }
                }
            }
        }
    }

    /// Conservative acquisition is atomic: either every requested object
    /// is held afterwards, or none of the newly requested ones are.
    #[test]
    fn conservative_is_atomic(
        first in proptest::collection::vec((0u32..6, modes()), 1..6),
        second in proptest::collection::vec((0u32..6, modes()), 1..6),
    ) {
        let mut lm = LockManager::new();
        let to_reqs = |v: &[(u32, LockMode)]| -> Vec<(ObjectId, LockMode)> {
            v.iter().map(|&(o, m)| (ObjectId(o), m)).collect()
        };
        let r1 = to_reqs(&first);
        prop_assert!(lm.try_acquire_all(TxnId(1), &r1));
        let r2 = to_reqs(&second);
        let ok = lm.try_acquire_all(TxnId(2), &r2);
        if ok {
            for &(o, m) in &r2 {
                let held = lm.held_mode(TxnId(2), o).expect("granted");
                prop_assert!(held.covers(m));
            }
        } else {
            for &(o, _) in &r2 {
                // Nothing newly acquired (txn 2 held nothing before).
                prop_assert_eq!(lm.held_mode(TxnId(2), o), None);
            }
        }
    }

    /// Release drains: after all transactions release, the table is
    /// empty and a fresh exclusive on anything succeeds.
    #[test]
    fn full_release_drains_table(
        script in proptest::collection::vec((0u64..4, 0u32..5, modes()), 1..60),
    ) {
        let mut lm = LockManager::new();
        for (txn, obj, mode) in script {
            if lm.request(TxnId(txn), ObjectId(obj), mode) == LockResult::Deadlock {
                lm.cancel_wait(TxnId(txn), ObjectId(obj));
                lm.release_all(TxnId(txn));
            }
        }
        for t in 0..4 {
            lm.release_all(TxnId(t));
        }
        // Queues may still hold entries of waiting transactions whose
        // grants fired during releases; release those too.
        for t in 0..4 {
            lm.release_all(TxnId(t));
            for o in 0..5 {
                lm.cancel_wait(TxnId(t), ObjectId(o));
            }
        }
        for t in 0..4 {
            lm.release_all(TxnId(t));
        }
        prop_assert_eq!(lm.active_objects(), 0);
        for o in 0..5u32 {
            prop_assert_eq!(
                lm.request(TxnId(9), ObjectId(o), LockMode::Exclusive),
                LockResult::Granted
            );
        }
    }
}
