//! Lock modes and their compatibility.
//!
//! The fundamental unit of concurrency control is "the object and
//! composite object" (§4.1): a transaction reading a composite object
//! takes a shared lock on the composite and *intention* locks up the
//! configuration hierarchy, in the classic hierarchical-locking style of
//! Gray et al. — the natural fit for a design database where checkout
//! locks whole configurations.

use std::fmt;

/// Hierarchical lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockMode {
    /// Intention shared: a descendant will be read.
    IntentionShared,
    /// Intention exclusive: a descendant will be written.
    IntentionExclusive,
    /// Shared: read this object (and, logically, its closure).
    Shared,
    /// Shared + intention exclusive: read here, write below.
    SharedIntentionExclusive,
    /// Exclusive: write this object.
    Exclusive,
}

impl LockMode {
    /// All modes, weakest first.
    pub const ALL: [LockMode; 5] = [
        LockMode::IntentionShared,
        LockMode::IntentionExclusive,
        LockMode::Shared,
        LockMode::SharedIntentionExclusive,
        LockMode::Exclusive,
    ];

    /// Classic hierarchical compatibility matrix.
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (self, other),
            (IntentionShared, IntentionShared)
                | (IntentionShared, IntentionExclusive)
                | (IntentionShared, Shared)
                | (IntentionShared, SharedIntentionExclusive)
                | (IntentionExclusive, IntentionShared)
                | (IntentionExclusive, IntentionExclusive)
                | (Shared, IntentionShared)
                | (Shared, Shared)
                | (SharedIntentionExclusive, IntentionShared)
        )
    }

    /// The intention mode to take on ancestors when requesting `self` on
    /// a descendant.
    pub fn intention(self) -> LockMode {
        match self {
            LockMode::IntentionShared | LockMode::Shared => LockMode::IntentionShared,
            _ => LockMode::IntentionExclusive,
        }
    }

    /// Least upper bound of two modes (the mode that grants both).
    pub fn join(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self == other {
            return self;
        }
        match (self.min(other), self.max(other)) {
            (IntentionShared, m) => m,
            (IntentionExclusive, Shared) => SharedIntentionExclusive,
            (IntentionExclusive, m) => m,
            (Shared, SharedIntentionExclusive) => SharedIntentionExclusive,
            (Shared, m) => m,
            (SharedIntentionExclusive, m) => m,
            (Exclusive, _) => Exclusive,
        }
    }

    /// Whether holding `self` implies every right `other` grants.
    pub fn covers(self, other: LockMode) -> bool {
        self.join(other) == self
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LockMode::IntentionShared => "IS",
            LockMode::IntentionExclusive => "IX",
            LockMode::Shared => "S",
            LockMode::SharedIntentionExclusive => "SIX",
            LockMode::Exclusive => "X",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    #[test]
    fn compatibility_matrix_matches_gray() {
        // Row-by-row against the textbook matrix.
        let table = [
            (IntentionShared, [true, true, true, true, false]),
            (IntentionExclusive, [true, true, false, false, false]),
            (Shared, [true, false, true, false, false]),
            (SharedIntentionExclusive, [true, false, false, false, false]),
            (Exclusive, [false, false, false, false, false]),
        ];
        for (a, row) in table {
            for (b, &expect) in LockMode::ALL.iter().zip(&row) {
                assert_eq!(a.compatible(*b), expect, "{a} vs {b}");
                assert_eq!(b.compatible(a), expect, "symmetry {b} vs {a}");
            }
        }
    }

    #[test]
    fn intention_modes() {
        assert_eq!(Shared.intention(), IntentionShared);
        assert_eq!(IntentionShared.intention(), IntentionShared);
        assert_eq!(Exclusive.intention(), IntentionExclusive);
        assert_eq!(SharedIntentionExclusive.intention(), IntentionExclusive);
        assert_eq!(IntentionExclusive.intention(), IntentionExclusive);
    }

    #[test]
    fn join_is_lub() {
        assert_eq!(Shared.join(IntentionExclusive), SharedIntentionExclusive);
        assert_eq!(IntentionShared.join(Exclusive), Exclusive);
        assert_eq!(Shared.join(Shared), Shared);
        for a in LockMode::ALL {
            for b in LockMode::ALL {
                let j = a.join(b);
                assert!(j.covers(a) && j.covers(b), "{a} join {b} = {j}");
                assert_eq!(j, b.join(a), "commutative");
            }
        }
    }

    #[test]
    fn covers_is_reflexive_and_ordered() {
        for m in LockMode::ALL {
            assert!(m.covers(m));
            assert!(Exclusive.covers(m));
        }
        assert!(!Shared.covers(Exclusive));
        assert!(SharedIntentionExclusive.covers(Shared));
        assert!(SharedIntentionExclusive.covers(IntentionExclusive));
    }
}
