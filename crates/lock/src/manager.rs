//! The lock manager.
//!
//! Supports two acquisition disciplines:
//!
//! * **Incremental** ([`LockManager::request`]): classic growing-phase
//!   acquisition with FIFO wait queues and wait-for-graph deadlock
//!   detection (the requester is chosen as victim on a cycle).
//! * **Conservative** ([`LockManager::try_acquire_all`]): atomic
//!   all-or-nothing pre-declaration, which is deadlock-free and what the
//!   simulation engine uses (every §4.1 transaction knows its object set
//!   up front).
//!
//! Hierarchical (composite-object) locking is layered on top by
//! [`LockManager::hierarchical_lockset`], which expands a request into
//! intention locks along the configuration path.

use crate::mode::LockMode;
use semcluster_vdm::{Database, DetHashSet, ObjectId};
use std::collections::VecDeque;
use std::fmt;

/// Transaction identifier (assigned by the caller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// Outcome of an incremental lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockResult {
    /// The lock is held (possibly upgraded).
    Granted,
    /// The request was queued; the caller must block until a release
    /// grants it.
    Waiting,
    /// Granting would deadlock; the requester should abort and retry.
    Deadlock,
}

#[derive(Debug, Default)]
struct LockEntry {
    holders: Vec<(TxnId, LockMode)>,
    queue: VecDeque<(TxnId, LockMode)>,
}

impl LockEntry {
    fn grantable(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders
            .iter()
            .all(|&(h, m)| h == txn || m.compatible(mode))
    }

    fn held_by(&self, txn: TxnId) -> Option<LockMode> {
        self.holders
            .iter()
            .find(|&&(h, _)| h == txn)
            .map(|&(_, m)| m)
    }

    fn set_holder(&mut self, txn: TxnId, mode: LockMode) {
        match self.holders.iter_mut().find(|(h, _)| *h == txn) {
            Some(slot) => slot.1 = mode,
            None => self.holders.push((txn, mode)),
        }
    }

    fn remove_holder(&mut self, txn: TxnId) {
        if let Some(pos) = self.holders.iter().position(|&(h, _)| h == txn) {
            self.holders.swap_remove(pos);
        }
    }

    fn is_idle(&self) -> bool {
        self.holders.is_empty() && self.queue.is_empty()
    }
}

/// Statistics counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Requests granted immediately.
    pub immediate_grants: u64,
    /// Requests that had to wait.
    pub waits: u64,
    /// Deadlocks detected (requester aborted).
    pub deadlocks: u64,
    /// Lock upgrades performed.
    pub upgrades: u64,
}

/// Sentinel in the object→entry index meaning "no entry".
const NO_ENTRY: u32 = u32::MAX;

/// The lock table.
///
/// Data-oriented layout (DESIGN.md §14): a dense `Vec<u32>` maps each
/// `ObjectId` index to a slot in a slab of [`LockEntry`]s, and freed
/// slots are recycled through a free list *keeping their holder/queue
/// capacity*, so the steady-state conservative acquire/release cycle
/// performs no allocation. Per-transaction holdings live in a small
/// linear `(TxnId, Vec<ObjectId>)` table (active transactions are
/// bounded by the user count) whose object lists are likewise recycled.
/// The table is mutated and walked inside the engine's profiled
/// lock-acquisition phase, so both its allocation pattern and every
/// observable decision must be pure functions of the request sequence
/// (DESIGN.md §13) — all holder scans here are order-independent
/// (`all`/`any` folds), so slab order never leaks into results.
#[derive(Debug, Default)]
pub struct LockManager {
    /// Object index → slot in `entries`, or [`NO_ENTRY`].
    slot: Vec<u32>,
    /// Slab of lock entries; live iff referenced from `slot`.
    entries: Vec<LockEntry>,
    /// Which object each slab slot currently belongs to (stale for free
    /// slots; cross-check against `slot`).
    entry_object: Vec<ObjectId>,
    /// Recycled slab slots (capacity of their holders/queue retained).
    free: Vec<u32>,
    /// Live entry count (objects with at least one holder or waiter).
    active: usize,
    /// Per-transaction holdings, linear-scanned (few active txns).
    held: Vec<(TxnId, Vec<ObjectId>)>,
    /// Recycled holding lists.
    held_free: Vec<Vec<ObjectId>>,
    stats: LockStats,
}

impl LockManager {
    /// Empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statistics so far.
    pub fn stats(&self) -> LockStats {
        self.stats
    }

    /// Grow the object→entry index to cover `objects` ids. Call from
    /// outside profiled phases when the object space grows; the index
    /// also self-grows as a safety net.
    pub fn ensure_object_capacity(&mut self, objects: usize) {
        if self.slot.len() < objects {
            self.slot.resize(objects, NO_ENTRY);
        }
    }

    #[inline]
    fn slot_of(&self, object: ObjectId) -> Option<usize> {
        match self.slot.get(object.index()) {
            Some(&s) if s != NO_ENTRY => Some(s as usize),
            _ => None,
        }
    }

    /// Slot for `object`, creating (or recycling) an entry if absent.
    fn slot_or_create(&mut self, object: ObjectId) -> usize {
        if let Some(s) = self.slot_of(object) {
            return s;
        }
        self.ensure_object_capacity(object.index() + 1);
        let s = match self.free.pop() {
            Some(s) => s as usize,
            None => {
                self.entries.push(LockEntry::default());
                self.entry_object.push(object);
                self.entries.len() - 1
            }
        };
        self.entry_object[s] = object;
        self.slot[object.index()] = s as u32;
        self.active += 1;
        s
    }

    /// Return an idle entry's slot to the free list, keeping capacity.
    fn release_slot(&mut self, object: ObjectId, s: usize) {
        debug_assert!(self.entries[s].is_idle());
        self.slot[object.index()] = NO_ENTRY;
        self.free.push(s as u32);
        self.active -= 1;
    }

    /// The mode `txn` currently holds on `object`, if any.
    pub fn held_mode(&self, txn: TxnId, object: ObjectId) -> Option<LockMode> {
        self.entries[self.slot_of(object)?].held_by(txn)
    }

    /// Number of objects with at least one holder or waiter.
    pub fn active_objects(&self) -> usize {
        self.active
    }

    /// Record that `txn` holds `object` (deduplicated).
    fn note_held(&mut self, txn: TxnId, object: ObjectId) {
        let list = match self.held.iter().position(|(t, _)| *t == txn) {
            Some(i) => &mut self.held[i].1,
            None => {
                let buf = self.held_free.pop().unwrap_or_default();
                self.held.push((txn, buf));
                &mut self.held.last_mut().expect("just pushed").1
            }
        };
        if !list.contains(&object) {
            list.push(object);
        }
    }

    // ------------------------------------------------------- incremental

    /// Request `mode` on `object` for `txn`, queueing on conflict.
    pub fn request(&mut self, txn: TxnId, object: ObjectId, mode: LockMode) -> LockResult {
        let s = self.slot_or_create(object);
        let entry = &self.entries[s];
        let effective = match entry.held_by(txn) {
            Some(held) if held.covers(mode) => {
                self.stats.immediate_grants += 1;
                return LockResult::Granted;
            }
            Some(held) => held.join(mode),
            None => mode,
        };
        let is_upgrade = entry.held_by(txn).is_some();
        // FIFO fairness: a fresh request must also wait behind queued
        // waiters; upgrades only check the holders.
        let must_wait =
            !entry.grantable(txn, effective) || (!is_upgrade && !entry.queue.is_empty());
        if !must_wait {
            if is_upgrade {
                self.stats.upgrades += 1;
            } else {
                self.stats.immediate_grants += 1;
            }
            self.entries[s].set_holder(txn, effective);
            self.note_held(txn, object);
            return LockResult::Granted;
        }
        // Would wait: check for a deadlock first.
        if self.would_deadlock(txn, object, effective) {
            self.stats.deadlocks += 1;
            return LockResult::Deadlock;
        }
        let entry = &mut self.entries[s];
        if is_upgrade {
            // Upgrades wait at the front so they cannot starve behind
            // requests they block anyway.
            entry.queue.push_front((txn, effective));
        } else {
            entry.queue.push_back((txn, effective));
        }
        self.stats.waits += 1;
        LockResult::Waiting
    }

    /// Whether queueing `txn`'s request would close a cycle in the
    /// wait-for graph. Exploration order follows the entry slab, but the
    /// answer (cycle or no cycle) is order-independent.
    fn would_deadlock(&self, txn: TxnId, object: ObjectId, mode: LockMode) -> bool {
        // Direct blockers of the hypothetical request.
        let mut frontier: Vec<TxnId> = self.blockers(txn, object, mode);
        let mut seen: DetHashSet<TxnId> = frontier.iter().copied().collect();
        while let Some(cur) = frontier.pop() {
            if cur == txn {
                return true;
            }
            // Whatever `cur` is itself waiting on.
            for s in 0..self.entries.len() {
                let obj = self.entry_object[s];
                if self.slot_of(obj) != Some(s) {
                    continue; // free slot
                }
                for qi in 0..self.entries[s].queue.len() {
                    let (waiter, wmode) = self.entries[s].queue[qi];
                    if waiter != cur {
                        continue;
                    }
                    for b in self.blockers(cur, obj, wmode) {
                        if seen.insert(b) || b == txn {
                            frontier.push(b);
                        }
                    }
                }
            }
        }
        false
    }

    /// Transactions whose holdings block `txn` from taking `mode` on
    /// `object`.
    fn blockers(&self, txn: TxnId, object: ObjectId, mode: LockMode) -> Vec<TxnId> {
        let Some(s) = self.slot_of(object) else {
            return Vec::new();
        };
        self.entries[s]
            .holders
            .iter()
            .filter(|&&(h, m)| h != txn && !m.compatible(mode))
            .map(|&(h, _)| h)
            .collect()
    }

    /// Drop a queued request (after a deadlock abort or timeout).
    pub fn cancel_wait(&mut self, txn: TxnId, object: ObjectId) {
        if let Some(s) = self.slot_of(object) {
            let entry = &mut self.entries[s];
            entry.queue.retain(|&(t, _)| t != txn);
            if entry.is_idle() {
                self.release_slot(object, s);
            }
        }
    }

    // ------------------------------------------------------ conservative

    /// Atomically acquire every `(object, mode)` in `requests`, or
    /// acquire nothing. Deadlock-free: there is no hold-and-wait.
    /// Returns `false` when any lock is unavailable.
    pub fn try_acquire_all(&mut self, txn: TxnId, requests: &[(ObjectId, LockMode)]) -> bool {
        // Feasibility check against holders AND queued waiters (so a
        // conservative stream does not starve incremental waiters).
        for &(object, mode) in requests {
            if let Some(s) = self.slot_of(object) {
                let entry = &self.entries[s];
                let effective = entry
                    .held_by(txn)
                    .map(|held| held.join(mode))
                    .unwrap_or(mode);
                if !entry.grantable(txn, effective)
                    || entry
                        .queue
                        .iter()
                        .any(|&(t, m)| t != txn && !m.compatible(effective))
                {
                    return false;
                }
            }
        }
        for &(object, mode) in requests {
            let s = self.slot_or_create(object);
            let entry = &mut self.entries[s];
            let effective = entry
                .held_by(txn)
                .map(|held| held.join(mode))
                .unwrap_or(mode);
            entry.set_holder(txn, effective);
            self.note_held(txn, object);
        }
        self.stats.immediate_grants += requests.len() as u64;
        true
    }

    // ----------------------------------------------------------- release

    /// Release everything `txn` holds; promote FIFO waiters that are now
    /// grantable. Returns the requests that became granted, in grant
    /// order.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<(TxnId, ObjectId, LockMode)> {
        let mut granted = Vec::new();
        let Some(pos) = self.held.iter().position(|(t, _)| *t == txn) else {
            return granted;
        };
        let (_, mut objects) = self.held.swap_remove(pos);
        for &object in &objects {
            let Some(s) = self.slot_of(object) else {
                continue;
            };
            let entry = &mut self.entries[s];
            entry.remove_holder(txn);
            // Promote from the queue head while compatible.
            while let Some(&(waiter, mode)) = entry.queue.front() {
                if entry.grantable(waiter, mode) {
                    entry.queue.pop_front();
                    entry.set_holder(waiter, mode);
                    granted.push((waiter, object, mode));
                } else {
                    break;
                }
            }
            if entry.is_idle() {
                self.release_slot(object, s);
            }
        }
        // Recycle the holdings list so the next transaction's acquire
        // phase reuses its capacity.
        objects.clear();
        self.held_free.push(objects);
        for &(waiter, object, _) in &granted {
            self.note_held(waiter, object);
        }
        granted
    }

    // --------------------------------------------------------- hierarchy

    /// Expand a request on `object` into the hierarchical lock set: the
    /// appropriate intention mode on each ancestor along the (first)
    /// composite chain, root first, then `mode` on the object itself.
    /// Depth is bounded to guard against pathological configurations.
    pub fn hierarchical_lockset(
        db: &Database,
        object: ObjectId,
        mode: LockMode,
    ) -> Vec<(ObjectId, LockMode)> {
        let mut out = Vec::new();
        Self::hierarchical_lockset_into(db, object, mode, &mut out);
        out
    }

    /// Allocation-free form of [`LockManager::hierarchical_lockset`]:
    /// appends the lock set to `out` (the ancestor chain lives on the
    /// stack, bounded by the same depth guard), so the engine can reuse
    /// one request buffer across its whole profiled lock phase.
    pub fn hierarchical_lockset_into(
        db: &Database,
        object: ObjectId,
        mode: LockMode,
        out: &mut Vec<(ObjectId, LockMode)>,
    ) {
        const MAX_DEPTH: usize = 16;
        let mut chain = [object; MAX_DEPTH];
        let mut len = 0usize;
        let mut cur = object;
        for _ in 0..MAX_DEPTH {
            match db.graph().composites(cur).first() {
                Some(&up) if up != object && !chain[..len].contains(&up) => {
                    chain[len] = up;
                    len += 1;
                    cur = up;
                }
                _ => break,
            }
        }
        out.extend(
            chain[..len]
                .iter()
                .rev()
                .map(|&anc| (anc, mode.intention())),
        );
        out.push((object, mode));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcluster_vdm::{ObjectName, RelFrequencies, RelKind, TypeLattice};
    use LockMode::*;

    fn o(i: u32) -> ObjectId {
        ObjectId(i)
    }

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }

    #[test]
    fn shared_locks_coexist_exclusive_does_not() {
        let mut lm = LockManager::new();
        assert_eq!(lm.request(t(1), o(1), Shared), LockResult::Granted);
        assert_eq!(lm.request(t(2), o(1), Shared), LockResult::Granted);
        assert_eq!(lm.request(t(3), o(1), Exclusive), LockResult::Waiting);
        assert_eq!(lm.stats().waits, 1);
    }

    #[test]
    fn release_promotes_fifo() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(1), Exclusive);
        assert_eq!(lm.request(t(2), o(1), Shared), LockResult::Waiting);
        assert_eq!(lm.request(t(3), o(1), Shared), LockResult::Waiting);
        let granted = lm.release_all(t(1));
        // Both shared waiters become grantable in order.
        assert_eq!(granted.len(), 2);
        assert_eq!(granted[0].0, t(2));
        assert_eq!(granted[1].0, t(3));
        assert_eq!(lm.held_mode(t(2), o(1)), Some(Shared));
    }

    #[test]
    fn fifo_prevents_overtaking() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(1), Shared);
        assert_eq!(lm.request(t(2), o(1), Exclusive), LockResult::Waiting);
        // A later shared request must not jump the queued X.
        assert_eq!(lm.request(t(3), o(1), Shared), LockResult::Waiting);
        let granted = lm.release_all(t(1));
        assert_eq!(granted[0], (t(2), o(1), Exclusive));
        assert_eq!(granted.len(), 1, "t3 still behind the exclusive");
    }

    #[test]
    fn reentrant_and_upgrade() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(1), Shared);
        assert_eq!(lm.request(t(1), o(1), Shared), LockResult::Granted);
        assert_eq!(lm.request(t(1), o(1), Exclusive), LockResult::Granted);
        assert_eq!(lm.held_mode(t(1), o(1)), Some(Exclusive));
        assert_eq!(lm.stats().upgrades, 1);
    }

    #[test]
    fn blocked_upgrade_waits_at_front() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(1), Shared);
        lm.request(t(2), o(1), Shared);
        assert_eq!(lm.request(t(3), o(1), Exclusive), LockResult::Waiting);
        // t1 upgrading must wait for t2, but goes ahead of t3.
        assert_eq!(lm.request(t(1), o(1), Exclusive), LockResult::Waiting);
        let granted = lm.release_all(t(2));
        // t1 still holds S itself; its upgrade to X is grantable (only
        // holder is t1).
        assert_eq!(granted[0].0, t(1));
        assert_eq!(granted[0].2, Exclusive);
    }

    #[test]
    fn deadlock_detected() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(1), Exclusive);
        lm.request(t(2), o(2), Exclusive);
        assert_eq!(lm.request(t(1), o(2), Exclusive), LockResult::Waiting);
        // t2 → o1 closes the cycle t2 → t1 → t2.
        assert_eq!(lm.request(t(2), o(1), Exclusive), LockResult::Deadlock);
        assert_eq!(lm.stats().deadlocks, 1);
        // Victim cancels and releases; the system drains.
        lm.cancel_wait(t(2), o(1));
        let granted = lm.release_all(t(2));
        assert_eq!(granted, vec![(t(1), o(2), Exclusive)]);
    }

    #[test]
    fn conservative_all_or_nothing() {
        let mut lm = LockManager::new();
        assert!(lm.try_acquire_all(t(1), &[(o(1), Shared), (o(2), Exclusive)]));
        // Conflicting set: nothing is taken.
        assert!(!lm.try_acquire_all(t(2), &[(o(3), Shared), (o(2), Shared)]));
        assert_eq!(lm.held_mode(t(2), o(3)), None);
        // Compatible set succeeds.
        assert!(lm.try_acquire_all(t(2), &[(o(1), Shared), (o(3), Shared)]));
        lm.release_all(t(1));
        assert!(lm.try_acquire_all(t(3), &[(o(2), Exclusive)]));
    }

    #[test]
    fn conservative_respects_waiters() {
        let mut lm = LockManager::new();
        lm.request(t(1), o(1), Shared);
        assert_eq!(lm.request(t(2), o(1), Exclusive), LockResult::Waiting);
        // A conservative S request must not starve the queued X.
        assert!(!lm.try_acquire_all(t(3), &[(o(1), Shared)]));
    }

    #[test]
    fn hierarchical_lockset_walks_configuration() {
        let mut lattice = TypeLattice::new();
        let ty = lattice.define_simple("t", RelFrequencies::UNIFORM).unwrap();
        let mut db = Database::with_lattice(lattice);
        let chip = db
            .create_object(ObjectName::new("CHIP", 1, "t"), ty, 10)
            .unwrap();
        let alu = db
            .create_object(ObjectName::new("ALU", 1, "t"), ty, 10)
            .unwrap();
        let adder = db
            .create_object(ObjectName::new("ADDER", 1, "t"), ty, 10)
            .unwrap();
        db.relate(RelKind::Configuration, chip, alu).unwrap();
        db.relate(RelKind::Configuration, alu, adder).unwrap();
        let set = LockManager::hierarchical_lockset(&db, adder, Exclusive);
        assert_eq!(
            set,
            vec![
                (chip, IntentionExclusive),
                (alu, IntentionExclusive),
                (adder, Exclusive)
            ]
        );
        let set = LockManager::hierarchical_lockset(&db, chip, Shared);
        assert_eq!(set, vec![(chip, Shared)]);
    }

    #[test]
    fn hierarchical_locks_allow_disjoint_writers() {
        let mut lattice = TypeLattice::new();
        let ty = lattice.define_simple("t", RelFrequencies::UNIFORM).unwrap();
        let mut db = Database::with_lattice(lattice);
        let root = db
            .create_object(ObjectName::new("R", 1, "t"), ty, 10)
            .unwrap();
        let a = db
            .create_object(ObjectName::new("A", 1, "t"), ty, 10)
            .unwrap();
        let b = db
            .create_object(ObjectName::new("B", 1, "t"), ty, 10)
            .unwrap();
        db.relate(RelKind::Configuration, root, a).unwrap();
        db.relate(RelKind::Configuration, root, b).unwrap();
        let mut lm = LockManager::new();
        assert!(lm.try_acquire_all(t(1), &LockManager::hierarchical_lockset(&db, a, Exclusive)));
        // Disjoint subtree: IX + IX on the root are compatible.
        assert!(lm.try_acquire_all(t(2), &LockManager::hierarchical_lockset(&db, b, Exclusive)));
        // But a whole-configuration reader must wait for both.
        assert!(!lm.try_acquire_all(t(3), &LockManager::hierarchical_lockset(&db, root, Shared)));
        lm.release_all(t(1));
        assert!(!lm.try_acquire_all(t(3), &LockManager::hierarchical_lockset(&db, root, Shared)));
        lm.release_all(t(2));
        assert!(lm.try_acquire_all(t(3), &LockManager::hierarchical_lockset(&db, root, Shared)));
    }
}
