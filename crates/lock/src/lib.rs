//! # semcluster-lock
//!
//! Concurrency control for the simulated OODBMS. §4.1 fixes "the object
//! and composite object" as the fundamental unit of concurrency control;
//! this crate provides the matching machinery:
//!
//! * hierarchical lock modes (IS/IX/S/SIX/X) with the classic
//!   compatibility matrix ([`LockMode`]),
//! * a lock table with FIFO queues, upgrades and wait-for-graph deadlock
//!   detection ([`LockManager::request`]),
//! * deadlock-free conservative pre-declaration
//!   ([`LockManager::try_acquire_all`]) — what the simulation engine
//!   uses, since §4.1 transactions know their object set up front, and
//! * composite-object expansion: locking a configuration subtree takes
//!   intention locks along the composite chain
//!   ([`LockManager::hierarchical_lockset`]).
//!
//! ```
//! use semcluster_lock::{LockManager, LockMode, LockResult, TxnId};
//! use semcluster_vdm::ObjectId;
//!
//! let mut lm = LockManager::new();
//! assert_eq!(lm.request(TxnId(1), ObjectId(7), LockMode::Shared), LockResult::Granted);
//! assert_eq!(lm.request(TxnId(2), ObjectId(7), LockMode::Shared), LockResult::Granted);
//! assert_eq!(lm.request(TxnId(3), ObjectId(7), LockMode::Exclusive), LockResult::Waiting);
//! let granted = lm.release_all(TxnId(1));
//! assert!(granted.is_empty()); // txn 2 still shares it
//! let granted = lm.release_all(TxnId(2));
//! assert_eq!(granted[0].0, TxnId(3)); // writer finally promoted
//! ```

#![warn(missing_docs)]

mod manager;
mod mode;

pub use manager::{LockManager, LockResult, LockStats, TxnId};
pub use mode::LockMode;
