//! # semcluster-sim
//!
//! A small deterministic discrete-event simulation kernel — the stand-in
//! for the proprietary PAWS modelling system the paper used.
//!
//! The kernel supplies exactly the queueing-network primitives the
//! engineering-database model of Chang & Katz needs:
//!
//! * a microsecond-resolution clock and future-event list
//!   ([`EventQueue`]) with FIFO tie-breaking for reproducibility,
//! * FIFO servers ([`FcfsServer`], [`ServerBank`]) whose completions are
//!   computable at submission time,
//! * seeded random variates ([`SimRng`], [`Zipf`], [`HyperExp`]),
//! * output analysis ([`OnlineStats`], [`Histogram`], [`TimeWeighted`]) and
//!   a replication harness ([`replicate`], [`replicate_multi`]).
//!
//! ```
//! use semcluster_sim::{EventQueue, FcfsServer, SimDuration, SimTime};
//!
//! // One user alternates think time and a disk access.
//! enum Ev { ThinkDone, IoDone }
//! let mut q = EventQueue::new();
//! let mut disk = FcfsServer::new("disk");
//! q.schedule(SimTime::from_secs(4), Ev::ThinkDone);
//! let mut completed = 0;
//! while let Some((now, ev)) = q.pop() {
//!     match ev {
//!         Ev::ThinkDone => {
//!             let done = disk.submit(now, SimDuration::from_millis(28));
//!             q.schedule(done, Ev::IoDone);
//!         }
//!         Ev::IoDone => {
//!             completed += 1;
//!             if completed < 3 {
//!                 q.schedule(now + SimDuration::from_secs(4), Ev::ThinkDone);
//!             }
//!         }
//!     }
//! }
//! assert_eq!(completed, 3);
//! assert_eq!(disk.jobs(), 3);
//! ```

#![warn(missing_docs)]

mod event;
mod experiment;
mod rng;
mod server;
mod stats;
mod time;

pub use event::EventQueue;
pub use experiment::{replicate, replicate_multi, Estimate};
pub use rng::{HyperExp, SimRng, Zipf};
pub use server::{FcfsServer, ServerBank};
pub use stats::{Histogram, OnlineStats, TimeWeighted};
pub use time::{SimDuration, SimTime};
