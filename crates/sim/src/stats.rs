//! Online statistics for simulation output analysis.

use crate::time::{SimDuration, SimTime};

/// Streaming mean/variance via Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add a simulated-time observation in seconds.
    pub fn push_duration(&mut self, d: SimDuration) {
        self.push(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Half-width of the 95 % confidence interval on the mean, using
    /// Student's t for small samples.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let t = t_quantile_975(self.n - 1);
        t * self.std_dev() / (self.n as f64).sqrt()
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// 97.5th percentile of Student's t with `df` degrees of freedom
/// (two-sided 95 % CI). Exact table for small df, normal limit beyond.
fn t_quantile_975(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=60 => 2.02,
        61..=120 => 1.99,
        _ => 1.96,
    }
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    width: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// `bins` equal-width buckets spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "empty histogram range");
        Histogram {
            lo,
            width: (hi - lo) / bins as f64,
            buckets: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record an observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else {
            let idx = ((x - self.lo) / self.width) as usize;
            if idx >= self.buckets.len() {
                self.overflow += 1;
            } else {
                self.buckets[idx] += 1;
            }
        }
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of buckets.
    pub fn bins(&self) -> usize {
        self.buckets.len()
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate p-quantile by linear walk (`p` in `[0, 1]`).
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut acc = self.underflow;
        if acc >= target {
            return self.lo;
        }
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b;
            if acc >= target {
                return self.lo + (i as f64 + 0.5) * self.width;
            }
        }
        self.lo + self.width * self.buckets.len() as f64
    }
}

/// Time-weighted average of a piecewise-constant quantity (queue length,
/// buffered dirty pages, …).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    area: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Start tracking at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            last_time: t0,
            last_value: v0,
            area: 0.0,
            start: t0,
        }
    }

    /// Record that the quantity changed to `value` at time `now`.
    pub fn update(&mut self, now: SimTime, value: f64) {
        self.area += self.last_value * (now - self.last_time).as_secs_f64();
        self.last_time = now;
        self.last_value = value;
    }

    /// Time-average over `[t0, now]`.
    pub fn average(&self, now: SimTime) -> f64 {
        let span = (now - self.start).as_secs_f64();
        if span <= 0.0 {
            return self.last_value;
        }
        let area = self.area + self.last_value * (now - self.last_time).as_secs_f64();
        area / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut whole = OnlineStats::new();
        for i in 0..50 {
            let x = (i as f64).sin() * 10.0;
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
            whole.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn ci_narrows_with_samples() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for i in 0..5 {
            small.push(i as f64);
        }
        for i in 0..500 {
            large.push((i % 5) as f64);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn histogram_buckets_and_quantile() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.bucket(0), 10);
        let median = h.quantile(0.5);
        assert!((median - 4.5).abs() <= 0.5, "median {median}");
    }

    #[test]
    fn histogram_overflow_underflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-1.0);
        h.record(5.0);
        h.record(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.update(SimTime::from_secs(10), 2.0); // 0 for 10s
        tw.update(SimTime::from_secs(20), 0.0); // 2 for 10s
        let avg = tw.average(SimTime::from_secs(20));
        assert!((avg - 1.0).abs() < 1e-9, "{avg}");
    }
}
