//! Queueing resources.
//!
//! [`FcfsServer`] models a single-server FIFO queue with known service
//! times. Because service is first-come-first-served and the kernel
//! delivers events in global timestamp order, the completion time of a job
//! is fully determined at submission: `max(now, free_at) + service`. The
//! server therefore needs no internal event machinery — callers submit a
//! job and schedule their own completion event at the returned time.

use crate::time::{SimDuration, SimTime};

/// A single FIFO server (one disk arm, one CPU, one log device…).
#[derive(Debug, Clone)]
pub struct FcfsServer {
    name: String,
    free_at: SimTime,
    busy: SimDuration,
    jobs: u64,
    queue_wait: SimDuration,
}

impl FcfsServer {
    /// Create an idle server. `name` is used only in reports.
    pub fn new(name: impl Into<String>) -> Self {
        FcfsServer {
            name: name.into(),
            free_at: SimTime::ZERO,
            busy: SimDuration::ZERO,
            jobs: 0,
            queue_wait: SimDuration::ZERO,
        }
    }

    /// Submit a job arriving at `now` that needs `service` time.
    /// Returns the absolute completion time.
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let start = self.free_at.max(now);
        self.queue_wait += start - now;
        let done = start + service;
        self.free_at = done;
        self.busy += service;
        self.jobs += 1;
        done
    }

    /// Name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Jobs served so far.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Total service time delivered so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Total time jobs spent waiting in queue (excludes service).
    pub fn total_queue_wait(&self) -> SimDuration {
        self.queue_wait
    }

    /// Mean queueing delay per job (excludes service).
    pub fn mean_queue_wait(&self) -> SimDuration {
        match self.queue_wait.as_micros().checked_div(self.jobs) {
            Some(mean) => SimDuration::from_micros(mean),
            None => SimDuration::ZERO,
        }
    }

    /// Fraction of `[0, horizon]` the server was busy.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            0.0
        } else {
            (self.busy.as_micros() as f64 / horizon.as_micros() as f64).min(1.0)
        }
    }

    /// Next instant the server is idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Reset statistics (jobs, busy time, queue wait) but keep `free_at`,
    /// so a measurement interval can start after warmup without emptying
    /// the queue.
    pub fn reset_stats(&mut self) {
        self.busy = SimDuration::ZERO;
        self.jobs = 0;
        self.queue_wait = SimDuration::ZERO;
    }
}

/// A bank of identical FIFO servers with a shared arrival stream routed to
/// whichever member is free earliest (models a disk array where the caller
/// does not care which spindle serves the request).
#[derive(Debug, Clone)]
pub struct ServerBank {
    servers: Vec<FcfsServer>,
}

impl ServerBank {
    /// Create `n` idle servers named `name[0..n)`.
    pub fn new(name: &str, n: usize) -> Self {
        assert!(n > 0, "a server bank needs at least one member");
        ServerBank {
            servers: (0..n)
                .map(|i| FcfsServer::new(format!("{name}[{i}]")))
                .collect(),
        }
    }

    /// Number of member servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the bank is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Submit a job to the earliest-free member.
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let idx = self
            .servers
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.free_at())
            .map(|(i, _)| i)
            .expect("a server bank always has at least one member (asserted at construction)");
        self.servers[idx].submit(now, service)
    }

    /// Submit a job to a specific member (e.g. page → disk mapping).
    ///
    /// # Panics
    /// If `member` is out of range — the caller's routing (e.g. a disk
    /// layout) disagrees with the bank size, which is a configuration
    /// invariant, not a run condition.
    pub fn submit_to(&mut self, member: usize, now: SimTime, service: SimDuration) -> SimTime {
        let n = self.servers.len();
        self.servers
            .get_mut(member)
            .unwrap_or_else(|| {
                panic!("server bank has {n} members but a job was routed to member {member}; the caller's routing table is out of sync with the bank size")
            })
            .submit(now, service)
    }

    /// Access a member for statistics.
    ///
    /// # Panics
    /// If `i` is out of range (same invariant as [`ServerBank::submit_to`]).
    pub fn member(&self, i: usize) -> &FcfsServer {
        let n = self.servers.len();
        self.servers
            .get(i)
            .unwrap_or_else(|| panic!("server bank has {n} members; member {i} does not exist"))
    }

    /// Total jobs across the bank.
    pub fn total_jobs(&self) -> u64 {
        self.servers.iter().map(|s| s.jobs()).sum()
    }

    /// Mean utilisation across members over `[0, horizon]`.
    pub fn mean_utilization(&self, horizon: SimTime) -> f64 {
        self.servers
            .iter()
            .map(|s| s.utilization(horizon))
            .sum::<f64>()
            / self.servers.len() as f64
    }

    /// Reset statistics on every member.
    pub fn reset_stats(&mut self) {
        for s in &mut self.servers {
            s.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = FcfsServer::new("cpu");
        let done = s.submit(SimTime::from_millis(10), ms(5));
        assert_eq!(done, SimTime::from_millis(15));
        assert_eq!(s.total_queue_wait(), SimDuration::ZERO);
    }

    #[test]
    fn back_to_back_jobs_queue() {
        let mut s = FcfsServer::new("disk");
        let t0 = SimTime::from_millis(0);
        let first = s.submit(t0, ms(10));
        let second = s.submit(t0, ms(10));
        assert_eq!(first, SimTime::from_millis(10));
        assert_eq!(second, SimTime::from_millis(20));
        assert_eq!(s.total_queue_wait(), ms(10));
        assert_eq!(s.mean_queue_wait(), ms(5));
    }

    #[test]
    fn idle_gap_is_not_busy_time() {
        let mut s = FcfsServer::new("disk");
        s.submit(SimTime::from_millis(0), ms(10));
        s.submit(SimTime::from_millis(100), ms(10));
        assert_eq!(s.busy_time(), ms(20));
        let u = s.utilization(SimTime::from_millis(200));
        assert!((u - 0.1).abs() < 1e-9, "{u}");
    }

    #[test]
    fn bank_routes_to_earliest_free() {
        let mut bank = ServerBank::new("disk", 2);
        let t0 = SimTime::ZERO;
        assert_eq!(bank.submit(t0, ms(10)), SimTime::from_millis(10));
        assert_eq!(bank.submit(t0, ms(10)), SimTime::from_millis(10));
        // both busy now, third job queues behind one of them
        assert_eq!(bank.submit(t0, ms(10)), SimTime::from_millis(20));
        assert_eq!(bank.total_jobs(), 3);
    }

    #[test]
    fn bank_directed_submission() {
        let mut bank = ServerBank::new("disk", 3);
        bank.submit_to(1, SimTime::ZERO, ms(7));
        assert_eq!(bank.member(1).jobs(), 1);
        assert_eq!(bank.member(0).jobs(), 0);
    }

    #[test]
    fn reset_stats_keeps_backlog() {
        let mut s = FcfsServer::new("disk");
        s.submit(SimTime::ZERO, ms(50));
        s.reset_stats();
        assert_eq!(s.jobs(), 0);
        // Queue backlog survives: next job still waits for the first.
        let done = s.submit(SimTime::ZERO, ms(10));
        assert_eq!(done, SimTime::from_millis(60));
    }
}
