//! The future-event list.
//!
//! A flat, `Vec`-backed binary min-heap calendar keyed by `(time, sequence)`.
//! The sequence number breaks ties so that events scheduled earlier fire
//! earlier at equal timestamps, which makes runs fully deterministic:
//! `(time, seq)` is a strict total order, so *any* correct heap pops the
//! identical sequence. Capacity can be reserved up front
//! ([`EventQueue::with_capacity`] / [`EventQueue::reserve`]) so that the
//! engine's steady-state pop/schedule cycle never allocates — `pop` swaps
//! the last entry into the root and sifts down in place.

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// A future-event list ordered by timestamp (FIFO among equal timestamps).
pub struct EventQueue<E> {
    heap: Vec<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Create an empty queue pre-sized for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(capacity),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Grow the backing store to hold at least `additional` more events
    /// without reallocating. Call from outside profiled phases.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event (time zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock — scheduling into the
    /// past is always a model bug.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={now}",
            now = self.now
        );
        let entry = Entry {
            time: at,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.heap.push(entry);
        self.sift_up(self.heap.len() - 1);
    }

    /// Remove and return the next event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let entry = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].key() < self.heap[parent].key() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let mut child = left;
            if right < len && self.heap[right].key() < self.heap[left].key() {
                child = right;
            }
            if self.heap[child].key() < self.heap[i].key() {
                self.heap.swap(i, child);
                i = child;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_micros(9_999_999), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn with_capacity_pops_identically_under_churn() {
        // Exercise a schedule/pop interleave and check it matches a
        // freshly allocated queue.
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(64);
        assert!(b.capacity() >= 64);
        let times = [7u64, 3, 3, 9, 1, 4, 4, 4, 8, 2, 6, 5];
        for (i, &t) in times.iter().enumerate() {
            a.schedule(SimTime::from_micros(t + 10), i);
            b.schedule(SimTime::from_micros(t + 10), i);
        }
        for _ in 0..4 {
            assert_eq!(a.pop(), b.pop());
        }
        b.reserve(16);
        for (i, &t) in times.iter().enumerate() {
            a.schedule(SimTime::from_micros(t + 20), 100 + i);
            b.schedule(SimTime::from_micros(t + 20), 100 + i);
        }
        while let Some(x) = a.pop() {
            assert_eq!(Some(x), b.pop());
        }
        assert!(b.is_empty());
    }
}
