//! The future-event list.
//!
//! A binary-heap calendar keyed by `(time, sequence)`. The sequence number
//! breaks ties so that events scheduled earlier fire earlier at equal
//! timestamps, which makes runs fully deterministic.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list ordered by timestamp (FIFO among equal timestamps).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event (time zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock — scheduling into the
    /// past is always a model bug.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={now}",
            now = self.now
        );
        let entry = Entry {
            time: at,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.heap.push(entry);
    }

    /// Remove and return the next event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_micros(9_999_999), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
