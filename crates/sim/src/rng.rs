//! Deterministic random variates.
//!
//! A thin wrapper over a seeded PRNG plus the distributions the simulation
//! model needs (uniform, exponential, discrete, Zipf, hyperexponential).
//! Keeping the wrapper in one place guarantees that every stochastic
//! decision in a run flows from a single user-supplied seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// Seeded PRNG with simulation-oriented sampling helpers.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create from a 64-bit seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Split off an independent child stream. Deterministic: the child seed
    /// is drawn from this stream.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.gen())
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        self.inner.gen_range(lo..=hi)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// Exponential variate with the given mean.
    pub fn exp_f64(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // Inverse CDF; `1 - f64()` avoids ln(0).
        -mean * (1.0 - self.f64()).ln()
    }

    /// Exponential simulated-time span with the given mean.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_micros(self.exp_f64(mean.as_micros() as f64).round() as u64)
    }

    /// Uniform simulated-time span in `[lo, hi]`.
    pub fn uniform_duration(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration::from_micros(self.range_inclusive(lo.as_micros(), hi.as_micros()))
    }

    /// Sample an index from unnormalised non-negative weights.
    ///
    /// # Panics
    /// Panics if the weights are empty or all zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index needs positive total weight");
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

/// Zipf distribution over `{0, …, n-1}` with skew `theta`
/// (`theta = 0` is uniform; larger is more skewed). Uses a precomputed CDF,
/// so construction is `O(n)` and sampling `O(log n)`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(theta >= 0.0, "Zipf skew must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Size of the support.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }
}

/// Two-phase hyperexponential service time: with probability `p` the mean
/// is `short`, otherwise `long`. Used to model the heavy-tailed session
/// lengths observed in the OCT traces.
#[derive(Debug, Clone, Copy)]
pub struct HyperExp {
    /// Probability of the short phase.
    pub p_short: f64,
    /// Mean of the short phase.
    pub short: SimDuration,
    /// Mean of the long phase.
    pub long: SimDuration,
}

impl HyperExp {
    /// Draw one variate.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let mean = if rng.chance(self.p_short) {
            self.short
        } else {
            self.long
        };
        rng.exp_duration(mean)
    }

    /// Analytic mean of the mixture.
    pub fn mean(&self) -> SimDuration {
        let m = self.p_short * self.short.as_micros() as f64
            + (1.0 - self.p_short) * self.long.as_micros() as f64;
        SimDuration::from_micros(m.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut parent = SimRng::seed_from_u64(7);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let s1: Vec<u64> = (0..16).map(|_| c1.below(1 << 30)).collect();
        let s2: Vec<u64> = (0..16).map(|_| c2.below(1 << 30)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exp_f64(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.weighted_index(&[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SimRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 700.0, "{counts:?}");
        }
    }

    #[test]
    fn zipf_skews_to_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SimRng::seed_from_u64(4);
        let mut head = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // ~56% of Zipf(1.0, 100) mass sits in the first 10 ranks.
        assert!(head as f64 / n as f64 > 0.45, "head share {head}");
    }

    #[test]
    fn hyperexp_mean_close_to_analytic() {
        let h = HyperExp {
            p_short: 0.9,
            short: SimDuration::from_millis(10),
            long: SimDuration::from_millis(1000),
        };
        let mut rng = SimRng::seed_from_u64(5);
        let n = 40_000u64;
        let total: u64 = (0..n).map(|_| h.sample(&mut rng).as_micros()).sum();
        let sample_mean = total as f64 / n as f64;
        let analytic = h.mean().as_micros() as f64;
        assert!(
            (sample_mean - analytic).abs() / analytic < 0.05,
            "sample {sample_mean} vs analytic {analytic}"
        );
    }

    #[test]
    fn chance_handles_extremes() {
        let mut rng = SimRng::seed_from_u64(6);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }
}
