//! Simulated time.
//!
//! The kernel measures time in integer **microseconds** so that event
//! ordering is exact and runs are bit-for-bit reproducible across platforms
//! (no floating-point accumulation drift in the clock itself).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the origin as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1e6).round() as u64)
        }
    }

    /// Construct from fractional milliseconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Length in milliseconds as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Integer multiple of this span.
    pub const fn times(self, n: u64) -> Self {
        SimDuration(self.0 * n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_millis(5) + SimDuration::from_micros(250);
        assert_eq!(t.as_micros(), 5_250);
        assert_eq!((t - SimTime::from_millis(5)).as_micros(), 250);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn display_in_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn duration_sum_and_times() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&s| SimDuration::from_secs(s))
            .sum();
        assert_eq!(total, SimDuration::from_secs(6));
        assert_eq!(SimDuration::from_millis(4).times(3).as_micros(), 12_000);
    }
}
