//! Replicated-experiment machinery: run a stochastic model several times
//! with independent seeds and report a mean with a confidence interval.

use crate::rng::SimRng;
use crate::stats::OnlineStats;

/// Summary of one measured quantity across replications.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Mean across replications.
    pub mean: f64,
    /// Half-width of the 95 % confidence interval.
    pub ci95: f64,
    /// Number of replications.
    pub replications: u64,
}

impl Estimate {
    /// Summarise an accumulator: mean, 95 % CI half-width, count.
    pub fn from_stats(stats: &OnlineStats) -> Estimate {
        Estimate {
            mean: stats.mean(),
            ci95: stats.ci95_half_width(),
            replications: stats.count(),
        }
    }

    /// Whether the interval `self.mean ± self.ci95` overlaps `other`'s.
    pub fn overlaps(&self, other: &Estimate) -> bool {
        (self.mean - other.mean).abs() <= self.ci95 + other.ci95
    }

    /// Relative CI half-width (`ci95 / mean`; 0 when the mean is 0).
    pub fn relative_error(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.ci95 / self.mean.abs()
        }
    }
}

/// Run `f` once per replication with an independent seeded RNG and fold the
/// scalar results into an [`Estimate`].
///
/// `base_seed` determines every replication's seed; equal inputs give equal
/// outputs.
pub fn replicate<F>(base_seed: u64, replications: u32, mut f: F) -> Estimate
where
    F: FnMut(SimRng) -> f64,
{
    assert!(replications > 0, "need at least one replication");
    let mut master = SimRng::seed_from_u64(base_seed);
    let mut stats = OnlineStats::new();
    for _ in 0..replications {
        let child = master.fork();
        stats.push(f(child));
    }
    Estimate::from_stats(&stats)
}

/// Like [`replicate`] but the model returns several named quantities; each
/// is folded separately. The set of names must be identical in every
/// replication.
pub fn replicate_multi<F>(base_seed: u64, replications: u32, mut f: F) -> Vec<(String, Estimate)>
where
    F: FnMut(SimRng) -> Vec<(String, f64)>,
{
    assert!(replications > 0, "need at least one replication");
    let mut master = SimRng::seed_from_u64(base_seed);
    let mut names: Vec<String> = Vec::new();
    let mut stats: Vec<OnlineStats> = Vec::new();
    for rep in 0..replications {
        let child = master.fork();
        let row = f(child);
        if rep == 0 {
            names = row.iter().map(|(n, _)| n.clone()).collect();
            stats = vec![OnlineStats::new(); row.len()];
        }
        assert_eq!(
            row.len(),
            names.len(),
            "replications must report the same metric set"
        );
        for (i, (name, value)) in row.into_iter().enumerate() {
            assert_eq!(name, names[i], "metric order changed between replications");
            stats[i].push(value);
        }
    }
    names
        .into_iter()
        .zip(stats)
        .map(|(n, s)| (n, Estimate::from_stats(&s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicate_is_deterministic() {
        let run = |seed| replicate(seed, 5, |mut rng| rng.f64());
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).mean, run(10).mean);
    }

    #[test]
    fn constant_model_has_zero_ci() {
        let e = replicate(1, 10, |_| 42.0);
        assert_eq!(e.mean, 42.0);
        assert_eq!(e.ci95, 0.0);
        assert_eq!(e.replications, 10);
    }

    #[test]
    fn overlap_detection() {
        let a = Estimate {
            mean: 10.0,
            ci95: 1.0,
            replications: 5,
        };
        let b = Estimate {
            mean: 11.5,
            ci95: 1.0,
            replications: 5,
        };
        let c = Estimate {
            mean: 20.0,
            ci95: 1.0,
            replications: 5,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn multi_metrics_fold_independently() {
        let rows = replicate_multi(3, 4, |mut rng| {
            vec![("const".to_string(), 7.0), ("noise".to_string(), rng.f64())]
        });
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "const");
        assert_eq!(rows[0].1.mean, 7.0);
        assert!(rows[1].1.ci95 > 0.0);
    }

    #[test]
    #[should_panic(expected = "same metric set")]
    fn mismatched_metric_sets_panic() {
        let mut first = true;
        replicate_multi(1, 2, move |_| {
            if std::mem::take(&mut first) {
                vec![("a".into(), 1.0)]
            } else {
                vec![("a".into(), 1.0), ("b".into(), 2.0)]
            }
        });
    }
}
