//! Property-based tests for the simulation kernel.

use proptest::prelude::*;
use semcluster_sim::{
    EventQueue, FcfsServer, Histogram, OnlineStats, SimDuration, SimRng, SimTime, Zipf,
};

proptest! {
    /// Events always pop in non-decreasing time order, regardless of the
    /// insertion schedule.
    #[test]
    fn event_queue_is_time_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// FCFS completions never precede arrivals, never overlap, and busy
    /// time equals the sum of service times.
    #[test]
    fn fcfs_server_conservation(
        jobs in proptest::collection::vec((0u64..100_000, 1u64..5_000), 1..100)
    ) {
        let mut sorted = jobs.clone();
        sorted.sort();
        let mut server = FcfsServer::new("s");
        let mut last_done = SimTime::ZERO;
        let mut total_service = 0u64;
        for (arrival, service) in sorted {
            let done = server.submit(
                SimTime::from_micros(arrival),
                SimDuration::from_micros(service),
            );
            prop_assert!(done.as_micros() >= arrival + service);
            prop_assert!(done >= last_done);
            last_done = done;
            total_service += service;
        }
        prop_assert_eq!(server.busy_time().as_micros(), total_service);
        prop_assert!(server.free_at() == last_done);
    }

    /// Welford statistics match the naive two-pass computation.
    #[test]
    fn online_stats_match_naive(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let scale = 1.0 + mean.abs() + var.abs();
        prop_assert!((s.mean() - mean).abs() / scale < 1e-9);
        prop_assert!((s.variance() - var).abs() / scale.powi(2).max(scale) < 1e-6);
    }

    /// Merging accumulators equals accumulating the concatenation.
    #[test]
    fn stats_merge_is_concat(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
        ys in proptest::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut whole = OnlineStats::new();
        for &x in &xs { a.push(x); whole.push(x); }
        for &y in &ys { b.push(y); whole.push(y); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }

    /// Every histogram observation lands somewhere; counts are conserved.
    #[test]
    fn histogram_conserves_counts(xs in proptest::collection::vec(-10.0f64..20.0, 0..300)) {
        let mut h = Histogram::new(0.0, 10.0, 7);
        for &x in &xs {
            h.record(x);
        }
        let bucketed: u64 = (0..h.bins()).map(|i| h.bucket(i)).sum();
        prop_assert_eq!(bucketed + h.underflow() + h.overflow(), xs.len() as u64);
    }

    /// Identical seeds give identical streams; the stream stays in range.
    #[test]
    fn rng_determinism(seed in any::<u64>(), n in 1u64..1000) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        for _ in 0..50 {
            let x = a.below(n);
            prop_assert_eq!(x, b.below(n));
            prop_assert!(x < n);
        }
    }

    /// Zipf samples stay within the support for any skew.
    #[test]
    fn zipf_in_support(n in 1usize..500, theta in 0.0f64..3.0, seed in any::<u64>()) {
        let z = Zipf::new(n, theta);
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Weighted index only ever returns indices with positive weight.
    #[test]
    fn weighted_index_respects_zeros(
        weights in proptest::collection::vec(0.0f64..10.0, 1..20),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..50 {
            let i = rng.weighted_index(&weights);
            prop_assert!(weights[i] > 0.0, "picked zero-weight index {}", i);
        }
    }
}
