//! Stochastic transaction generation against a live database.
//!
//! The generator is stateless: the engine owns the database (and mutates
//! it as writes create objects), so each call samples from the database's
//! current population.

use crate::query::QueryKind;
use crate::session::{CreateMode, Transaction, TxnOp};
use crate::spec::WorkloadSpec;
use semcluster_sim::SimRng;
use semcluster_vdm::{Database, ObjectId};

/// Relative frequencies of the six read query types. Navigation dominates
/// ad-hoc lookup in object-oriented tools (§3.5 observation 1).
const READ_MIX: [f64; 6] = [
    1.0, // SimpleLookup
    1.0, // ComponentRetrieval
    5.0, // CompositeRetrieval
    0.5, // DescendantRetrieval
    1.0, // AncestorRetrieval
    1.0, // CorrespondentRetrieval
];

/// Probability that a create attaches as a new component (the remainder
/// derives a new version).
const NEW_COMPONENT_FRACTION: f64 = 0.7;

/// Sample a read query kind from the navigation-heavy mix.
pub fn sample_read_kind(rng: &mut SimRng) -> QueryKind {
    QueryKind::READS[rng.weighted_index(&READ_MIX)]
}

/// Sample the shape of a write transaction: for each mutation, whether it
/// creates (`Some(mode)`) or updates (`None`).
pub fn sample_write_shape(spec: &WorkloadSpec, rng: &mut SimRng) -> Vec<Option<CreateMode>> {
    let n = rng.range_inclusive(spec.writes_per_txn.0 as u64, spec.writes_per_txn.1 as u64);
    (0..n)
        .map(|_| {
            if rng.chance(spec.create_fraction) {
                Some(if rng.chance(NEW_COMPONENT_FRACTION) {
                    CreateMode::NewComponent
                } else {
                    CreateMode::NewVersion
                })
            } else {
                None
            }
        })
        .collect()
}

/// Pick a uniformly random existing object.
pub fn pick_object(db: &Database, rng: &mut SimRng) -> ObjectId {
    let n = db.object_count();
    assert!(n > 0, "cannot sample from an empty database");
    ObjectId(rng.below(n as u64) as u32)
}

/// Sample one read transaction.
pub fn gen_read(db: &Database, rng: &mut SimRng) -> Transaction {
    let kind = QueryKind::READS[rng.weighted_index(&READ_MIX)];
    Transaction {
        ops: vec![TxnOp::Read {
            kind,
            root: pick_object(db, rng),
        }],
    }
}

/// Sample one write transaction (1–k mutations, per the spec).
pub fn gen_write(db: &Database, spec: &WorkloadSpec, rng: &mut SimRng) -> Transaction {
    let n = rng.range_inclusive(spec.writes_per_txn.0 as u64, spec.writes_per_txn.1 as u64);
    let mut ops = Vec::with_capacity(n as usize);
    for _ in 0..n {
        if rng.chance(spec.create_fraction) {
            let mode = if rng.chance(NEW_COMPONENT_FRACTION) {
                CreateMode::NewComponent
            } else {
                CreateMode::NewVersion
            };
            ops.push(TxnOp::Create {
                anchor: pick_object(db, rng),
                mode,
            });
        } else {
            ops.push(TxnOp::Update {
                target: pick_object(db, rng),
            });
        }
    }
    Transaction { ops }
}

/// Sample the next transaction: read with probability
/// `spec.read_probability()`, write otherwise.
pub fn gen_transaction(db: &Database, spec: &WorkloadSpec, rng: &mut SimRng) -> Transaction {
    if rng.chance(spec.read_probability()) {
        gen_read(db, rng)
    } else {
        gen_write(db, spec, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::StructureDensity;
    use semcluster_vdm::SyntheticDbSpec;

    fn db() -> Database {
        SyntheticDbSpec::default().build().0
    }

    #[test]
    fn read_write_mix_tracks_ratio() {
        let db = db();
        let spec = WorkloadSpec::new(StructureDensity::Low3, 5.0);
        let mut rng = SimRng::seed_from_u64(2);
        let n = 20_000;
        let reads = (0..n)
            .filter(|_| gen_transaction(&db, &spec, &mut rng).is_read())
            .count();
        let frac = reads as f64 / n as f64;
        assert!((frac - 5.0 / 6.0).abs() < 0.02, "read fraction {frac}");
    }

    #[test]
    fn writes_have_spec_bounded_ops() {
        let db = db();
        let spec = WorkloadSpec::new(StructureDensity::Med5, 1.0);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..500 {
            let t = gen_write(&db, &spec, &mut rng);
            assert!((1..=3).contains(&t.ops.len()));
            assert!(!t.is_read());
        }
    }

    #[test]
    fn reads_are_single_op_and_in_range() {
        let db = db();
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..500 {
            let t = gen_read(&db, &mut rng);
            assert_eq!(t.ops.len(), 1);
            match t.ops[0] {
                TxnOp::Read { root, .. } => {
                    assert!(root.index() < db.object_count());
                }
                _ => panic!("read txn must hold a read op"),
            }
        }
    }

    #[test]
    fn composite_retrieval_dominates_reads() {
        let db = db();
        let mut rng = SimRng::seed_from_u64(5);
        let mut composite = 0;
        let n = 5_000;
        for _ in 0..n {
            if let TxnOp::Read {
                kind: QueryKind::CompositeRetrieval,
                ..
            } = gen_read(&db, &mut rng).ops[0]
            {
                composite += 1;
            }
        }
        let frac = composite as f64 / n as f64;
        assert!(frac > 0.4, "composite fraction {frac}");
    }
}
