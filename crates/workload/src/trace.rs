//! Synthetic OCT traces and their analysis.
//!
//! §3.2 lists what the instrumentation recorded per tool invocation: the
//! tool identifier, structure/simple read and write counts, session time,
//! and the fan-out of structural accesses. [`generate_invocation`]
//! synthesises such a record from a [`ToolProfile`]; [`analyze`] reduces a
//! trace back to the per-tool aggregates of Figures 3.2 (R/W ratio), 3.3
//! (I/O rate) and 3.4 (density distribution) — closing the loop the
//! paper's measurement study established.

use crate::oct::ToolProfile;
use crate::spec::StructureDensity;
use semcluster_sim::{SimDuration, SimRng};
use std::collections::BTreeMap;

/// One logical operation in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Retrieval through attachment links; `fanout` objects returned.
    StructureRead {
        /// Number of objects the structural access returned.
        fanout: u32,
    },
    /// Name-based retrieval.
    SimpleRead,
    /// Creation of an attachment link.
    StructureWrite,
    /// Plain object write.
    SimpleWrite,
}

impl TraceOp {
    /// Whether the operation is a read.
    pub fn is_read(self) -> bool {
        matches!(self, TraceOp::StructureRead { .. } | TraceOp::SimpleRead)
    }
}

/// One tool invocation: everything §3.2 says was recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// Tool identifier (e.g. `SPARCS`, `VEM`).
    pub tool: String,
    /// Session time between `octBegin()` and `octEnd()`.
    pub session: SimDuration,
    /// The logical operations of the session.
    pub ops: Vec<TraceOp>,
}

/// Synthesize one invocation of `profile`.
pub fn generate_invocation(profile: &ToolProfile, rng: &mut SimRng) -> Invocation {
    // Session lengths are exponential around the tool's mean, floored so
    // even the shortest session does some work.
    let session_s = rng
        .exp_f64(profile.mean_session_s)
        .max(profile.mean_session_s * 0.05);
    let op_count = ((profile.io_rate_per_s * session_s).round() as usize).max(1);
    let p_read = profile.rw_ratio / (profile.rw_ratio + 1.0);
    let mut ops = Vec::with_capacity(op_count);
    for _ in 0..op_count {
        if rng.chance(p_read) {
            if rng.chance(profile.structural_read_fraction) {
                let bucket = rng.weighted_index(&profile.density_mix);
                let fanout = match bucket {
                    0 => rng.range_inclusive(0, 3),
                    1 => rng.range_inclusive(4, 10),
                    _ => rng.range_inclusive(11, 20),
                } as u32;
                ops.push(TraceOp::StructureRead { fanout });
            } else {
                ops.push(TraceOp::SimpleRead);
            }
        } else if rng.chance(0.5) {
            ops.push(TraceOp::StructureWrite);
        } else {
            ops.push(TraceOp::SimpleWrite);
        }
    }
    Invocation {
        tool: profile.name.to_string(),
        session: SimDuration::from_secs_f64(session_s),
        ops,
    }
}

/// Synthesize `per_tool` invocations of every profile.
pub fn generate_trace(
    profiles: &[ToolProfile],
    per_tool: usize,
    rng: &mut SimRng,
) -> Vec<Invocation> {
    let mut out = Vec::with_capacity(profiles.len() * per_tool);
    for p in profiles {
        for _ in 0..per_tool {
            out.push(generate_invocation(p, rng));
        }
    }
    out
}

/// Per-tool aggregates recovered from a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolStats {
    /// Tool identifier.
    pub tool: String,
    /// Number of invocations analysed.
    pub invocations: usize,
    /// Structure reads observed.
    pub structure_reads: u64,
    /// Simple reads observed.
    pub simple_reads: u64,
    /// Structure writes observed.
    pub structure_writes: u64,
    /// Simple writes observed.
    pub simple_writes: u64,
    /// Total session time.
    pub session: SimDuration,
    /// Downward-density bucket shares (low / med / high) among structure
    /// reads.
    pub density_shares: [f64; 3],
}

impl ToolStats {
    /// Figure 3.2's metric: (structure+simple reads) / (structure+simple
    /// writes). Infinite when the tool never wrote.
    pub fn rw_ratio(&self) -> f64 {
        let reads = (self.structure_reads + self.simple_reads) as f64;
        let writes = (self.structure_writes + self.simple_writes) as f64;
        if writes == 0.0 {
            f64::INFINITY
        } else {
            reads / writes
        }
    }

    /// Figure 3.3's metric: logical I/Os per session second.
    pub fn io_rate(&self) -> f64 {
        let ops =
            self.structure_reads + self.simple_reads + self.structure_writes + self.simple_writes;
        let secs = self.session.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            ops as f64 / secs
        }
    }
}

/// Reduce a trace to per-tool aggregates, sorted by tool name.
pub fn analyze(trace: &[Invocation]) -> Vec<ToolStats> {
    let mut by_tool: BTreeMap<&str, ToolStats> = BTreeMap::new();
    let mut density_counts: BTreeMap<&str, [u64; 3]> = BTreeMap::new();
    for inv in trace {
        let entry = by_tool.entry(&inv.tool).or_insert_with(|| ToolStats {
            tool: inv.tool.clone(),
            invocations: 0,
            structure_reads: 0,
            simple_reads: 0,
            structure_writes: 0,
            simple_writes: 0,
            session: SimDuration::ZERO,
            density_shares: [0.0; 3],
        });
        entry.invocations += 1;
        entry.session += inv.session;
        let counts = density_counts.entry(&inv.tool).or_insert([0; 3]);
        for op in &inv.ops {
            match *op {
                TraceOp::StructureRead { fanout } => {
                    entry.structure_reads += 1;
                    let bucket = match StructureDensity::classify(fanout as usize) {
                        StructureDensity::Low3 => 0,
                        StructureDensity::Med5 => 1,
                        StructureDensity::High10 => 2,
                    };
                    counts[bucket] += 1;
                }
                TraceOp::SimpleRead => entry.simple_reads += 1,
                TraceOp::StructureWrite => entry.structure_writes += 1,
                TraceOp::SimpleWrite => entry.simple_writes += 1,
            }
        }
    }
    let mut out: Vec<ToolStats> = by_tool.into_values().collect();
    for stats in &mut out {
        let counts = density_counts[stats.tool.as_str()];
        let total: u64 = counts.iter().sum();
        if total > 0 {
            for (share, &c) in stats.density_shares.iter_mut().zip(&counts) {
                *share = c as f64 / total as f64;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oct::oct_tools;

    #[test]
    fn analysis_recovers_profile_rw_ratio() {
        let mut rng = SimRng::seed_from_u64(7);
        let tools = oct_tools();
        let trace = generate_trace(&tools, 30, &mut rng);
        let stats = analyze(&trace);
        assert_eq!(stats.len(), tools.len());
        for t in &tools {
            if t.rw_ratio > 500.0 {
                continue; // too few writes to estimate reliably
            }
            let s = stats.iter().find(|s| s.tool == t.name).unwrap();
            let measured = s.rw_ratio();
            let rel = (measured - t.rw_ratio).abs() / t.rw_ratio;
            assert!(
                rel < 0.25,
                "{}: profile {} measured {measured}",
                t.name,
                t.rw_ratio
            );
        }
    }

    #[test]
    fn analysis_recovers_io_rate() {
        let mut rng = SimRng::seed_from_u64(8);
        let tools = oct_tools();
        let trace = generate_trace(&tools, 30, &mut rng);
        for s in analyze(&trace) {
            let profile = tools.iter().find(|t| t.name == s.tool).unwrap();
            let rel = (s.io_rate() - profile.io_rate_per_s).abs() / profile.io_rate_per_s;
            assert!(
                rel < 0.1,
                "{}: {} vs {}",
                s.tool,
                s.io_rate(),
                profile.io_rate_per_s
            );
        }
    }

    #[test]
    fn analysis_recovers_density_mix() {
        let mut rng = SimRng::seed_from_u64(9);
        let tools = oct_tools();
        let trace = generate_trace(&tools, 50, &mut rng);
        for s in analyze(&trace) {
            let profile = tools.iter().find(|t| t.name == s.tool).unwrap();
            for (measured, expected) in s.density_shares.iter().zip(&profile.density_mix) {
                assert!(
                    (measured - expected).abs() < 0.05,
                    "{}: {:?} vs {:?}",
                    s.tool,
                    s.density_shares,
                    profile.density_mix
                );
            }
        }
    }

    #[test]
    fn vem_never_infinite_with_enough_ops() {
        // VEM's 6000:1 ratio needs very long traces to see a write; the
        // ratio estimator must stay finite or infinite, never NaN.
        let mut rng = SimRng::seed_from_u64(10);
        let vem = crate::oct::tool("vem").unwrap();
        let inv = generate_invocation(&vem, &mut rng);
        let stats = analyze(std::slice::from_ref(&inv));
        let r = stats[0].rw_ratio();
        assert!(r.is_infinite() || r > 100.0);
    }

    #[test]
    fn trace_ops_classified() {
        assert!(TraceOp::StructureRead { fanout: 2 }.is_read());
        assert!(TraceOp::SimpleRead.is_read());
        assert!(!TraceOp::StructureWrite.is_read());
        assert!(!TraceOp::SimpleWrite.is_read());
    }
}
