//! OCT tool profiles — the Section 3 measurement study, reconstructed.
//!
//! The paper instrumented the Berkeley CAD group's OCT data manager and
//! recorded ~5000 invocations of ten tools. The raw traces are long gone;
//! what survives are the aggregate statistics of Figures 3.2–3.4 and the
//! prose. Each [`ToolProfile`] encodes those aggregates (exact where the
//! paper gives numbers — VEM's 6000 R/W ratio, the 0.52–170 range across
//! MOSAICO's phases — and figure-shape estimates elsewhere), and the
//! trace generator in [`crate::trace`] synthesises invocation logs whose
//! analysis reproduces the figures.

/// Statistical profile of one OCT tool.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolProfile {
    /// Tool name as it appears in the paper.
    pub name: &'static str,
    /// What the tool does (from §3.3's captions).
    pub description: &'static str,
    /// Logical read/write ratio (Figure 3.2).
    pub rw_ratio: f64,
    /// Logical I/Os per session second (Figure 3.3).
    pub io_rate_per_s: f64,
    /// Shares of downward structural accesses falling in the low (0–3),
    /// medium (4–10) and high (>10) density buckets (Figure 3.4).
    pub density_mix: [f64; 3],
    /// Mean session length in seconds.
    pub mean_session_s: f64,
    /// Fraction of reads that are structural (vs simple) — §3.2's
    /// structure-read vs simple-read split.
    pub structural_read_fraction: f64,
    /// Whether the tool runs interactively (session time includes think
    /// time; only VEM).
    pub interactive: bool,
}

/// The ten OCT tools of Section 3.
///
/// `atlas`, `cds`, `cpre`, `PGcurrent` and `mosaico` are the phases of
/// the MOSAICO macro-cell router; their R/W ratios span the paper's
/// quoted 0.52–170 range.
pub fn oct_tools() -> Vec<ToolProfile> {
    vec![
        ToolProfile {
            name: "vem",
            description: "graphical editor",
            rw_ratio: 6000.0,
            io_rate_per_s: 9.0,
            density_mix: [0.30, 0.25, 0.45],
            mean_session_s: 1800.0,
            structural_read_fraction: 0.85,
            interactive: true,
        },
        ToolProfile {
            name: "wolfe",
            description: "standard-cell placement and global router",
            rw_ratio: 24.0,
            io_rate_per_s: 55.0,
            density_mix: [0.35, 0.40, 0.25],
            mean_session_s: 420.0,
            structural_read_fraction: 0.75,
            interactive: false,
        },
        ToolProfile {
            name: "sparcs",
            description: "symbolic layout spacer",
            rw_ratio: 8.0,
            io_rate_per_s: 80.0,
            density_mix: [0.70, 0.22, 0.08],
            mean_session_s: 300.0,
            structural_read_fraction: 0.90,
            interactive: false,
        },
        ToolProfile {
            name: "misII",
            description: "multiple-level logic optimizer",
            rw_ratio: 60.0,
            io_rate_per_s: 35.0,
            density_mix: [0.75, 0.20, 0.05],
            mean_session_s: 240.0,
            structural_read_fraction: 0.70,
            interactive: false,
        },
        ToolProfile {
            name: "bdsim",
            description: "multiple-level simulator",
            rw_ratio: 30.0,
            io_rate_per_s: 45.0,
            density_mix: [0.72, 0.21, 0.07],
            mean_session_s: 360.0,
            structural_read_fraction: 0.80,
            interactive: false,
        },
        ToolProfile {
            name: "atlas",
            description: "MOSAICO phase: routing-area definition",
            rw_ratio: 0.52,
            io_rate_per_s: 25.0,
            density_mix: [0.80, 0.15, 0.05],
            mean_session_s: 120.0,
            structural_read_fraction: 0.60,
            interactive: false,
        },
        ToolProfile {
            name: "cds",
            description: "MOSAICO phase: channel definition",
            rw_ratio: 3.2,
            io_rate_per_s: 30.0,
            density_mix: [0.78, 0.17, 0.05],
            mean_session_s: 150.0,
            structural_read_fraction: 0.65,
            interactive: false,
        },
        ToolProfile {
            name: "cpre",
            description: "MOSAICO phase: channel pre-processing",
            rw_ratio: 12.0,
            io_rate_per_s: 40.0,
            density_mix: [0.74, 0.20, 0.06],
            mean_session_s: 180.0,
            structural_read_fraction: 0.70,
            interactive: false,
        },
        ToolProfile {
            name: "PGcurrent",
            description: "MOSAICO phase: power/ground current analysis",
            rw_ratio: 45.0,
            io_rate_per_s: 50.0,
            density_mix: [0.70, 0.24, 0.06],
            mean_session_s: 200.0,
            structural_read_fraction: 0.72,
            interactive: false,
        },
        ToolProfile {
            name: "mosaico",
            description: "MOSAICO phase: detailed macro-cell routing",
            rw_ratio: 170.0,
            io_rate_per_s: 65.0,
            density_mix: [0.68, 0.25, 0.07],
            mean_session_s: 600.0,
            structural_read_fraction: 0.85,
            interactive: false,
        },
    ]
}

/// Look up a tool profile by name.
pub fn tool(name: &str) -> Option<ToolProfile> {
    oct_tools().into_iter().find(|t| t.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_tools_exist() {
        let tools = oct_tools();
        assert_eq!(tools.len(), 10);
        let names: Vec<&str> = tools.iter().map(|t| t.name).collect();
        assert!(names.contains(&"vem"));
        assert!(names.contains(&"mosaico"));
    }

    #[test]
    fn paper_quoted_values_hold() {
        assert_eq!(tool("vem").unwrap().rw_ratio, 6000.0);
        assert_eq!(tool("atlas").unwrap().rw_ratio, 0.52);
        assert_eq!(tool("mosaico").unwrap().rw_ratio, 170.0);
        // The non-VEM tools span 0.52 to 170.
        let (min, max) = oct_tools()
            .iter()
            .filter(|t| t.name != "vem")
            .fold((f64::MAX, f64::MIN), |(lo, hi), t| {
                (lo.min(t.rw_ratio), hi.max(t.rw_ratio))
            });
        assert_eq!(min, 0.52);
        assert_eq!(max, 170.0);
    }

    #[test]
    fn density_mixes_are_distributions() {
        for t in oct_tools() {
            let sum: f64 = t.density_mix.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", t.name);
        }
    }

    #[test]
    fn only_vem_is_interactive() {
        for t in oct_tools() {
            assert_eq!(t.interactive, t.name == "vem");
        }
    }

    #[test]
    fn wolfe_is_the_density_outlier() {
        // §3.4: "Except Wolfe, most of the OCT tools' downward access are
        // dominated by low structure density."
        for t in oct_tools() {
            if t.name == "wolfe" {
                assert!(t.density_mix[0] < 0.5);
            } else if t.name != "vem" {
                assert!(t.density_mix[0] >= 0.5, "{}", t.name);
            }
        }
    }
}
