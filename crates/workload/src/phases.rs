//! Phased workloads.
//!
//! §3.3 observes that "different phases of the same application may have
//! wide variations in the read/write ratio" — MOSAICO's phases span
//! 0.52 to 170 within one run — and concludes that "the clustering
//! algorithm must be adaptive to achieve adequate response time at
//! different phases of an application". A [`PhaseSchedule`] drives the
//! engine through such a sequence.

use crate::oct::oct_tools;
use crate::spec::{StructureDensity, WorkloadSpec};

/// A cyclic sequence of workload phases, each lasting a number of
/// transactions.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSchedule {
    phases: Vec<(WorkloadSpec, u64)>,
    cycle: u64,
}

impl PhaseSchedule {
    /// Build a schedule.
    ///
    /// # Panics
    /// Panics if `phases` is empty or any phase lasts zero transactions.
    pub fn new(phases: Vec<(WorkloadSpec, u64)>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        assert!(
            phases.iter().all(|&(_, n)| n > 0),
            "phases must last at least one transaction"
        );
        let cycle = phases.iter().map(|&(_, n)| n).sum();
        PhaseSchedule { phases, cycle }
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether the schedule is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Transactions in one full cycle.
    pub fn cycle_length(&self) -> u64 {
        self.cycle
    }

    /// The workload in force for the `completed`-th transaction (the
    /// schedule repeats).
    pub fn spec_at(&self, completed: u64) -> &WorkloadSpec {
        let mut pos = completed % self.cycle;
        for (spec, n) in &self.phases {
            if pos < *n {
                return spec;
            }
            pos -= n;
        }
        unreachable!("pos < cycle by construction")
    }

    /// The MOSAICO run: its five phases in §3.3's order, with the
    /// figure's read/write ratios (0.52 → 3.2 → 12 → 45 → 170) at the
    /// given density, `txns_per_phase` transactions each.
    pub fn mosaico(density: StructureDensity, txns_per_phase: u64) -> Self {
        let phase_names = ["atlas", "cds", "cpre", "PGcurrent", "mosaico"];
        let tools = oct_tools();
        let phases = phase_names
            .iter()
            .map(|name| {
                let profile = tools
                    .iter()
                    .find(|t| t.name == *name)
                    .expect("MOSAICO phases are in the tool table");
                (
                    WorkloadSpec::new(density, profile.rw_ratio.max(0.5)),
                    txns_per_phase,
                )
            })
            .collect();
        PhaseSchedule::new(phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_at_walks_and_cycles() {
        let s = PhaseSchedule::new(vec![
            (WorkloadSpec::new(StructureDensity::Low3, 1.0), 10),
            (WorkloadSpec::new(StructureDensity::Low3, 100.0), 5),
        ]);
        assert_eq!(s.cycle_length(), 15);
        assert_eq!(s.spec_at(0).rw_ratio, 1.0);
        assert_eq!(s.spec_at(9).rw_ratio, 1.0);
        assert_eq!(s.spec_at(10).rw_ratio, 100.0);
        assert_eq!(s.spec_at(14).rw_ratio, 100.0);
        assert_eq!(s.spec_at(15).rw_ratio, 1.0, "cycles");
        assert_eq!(s.spec_at(25).rw_ratio, 100.0);
    }

    #[test]
    fn mosaico_matches_figure_3_2() {
        let s = PhaseSchedule::mosaico(StructureDensity::Med5, 100);
        assert_eq!(s.len(), 5);
        assert_eq!(s.cycle_length(), 500);
        let ratios: Vec<f64> = (0..5).map(|i| s.spec_at(i * 100).rw_ratio).collect();
        assert_eq!(ratios, vec![0.52, 3.2, 12.0, 45.0, 170.0]);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_panics() {
        PhaseSchedule::new(vec![]);
    }
}
