//! Sessions and transactions.
//!
//! §4.1: "every object read and write operation is a transaction.
//! Furthermore, a user session is composed of 5 to 20 transactions with
//! various read/write ratios." Checkout/checkin are macros over the seven
//! query types: a checkout is several component retrievals plus one
//! corresponding-object retrieval; a checkin is some insertions and
//! updates.

use crate::query::QueryKind;
use crate::spec::WorkloadSpec;
use semcluster_sim::SimRng;
use semcluster_vdm::ObjectId;

/// One logical operation inside a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOp {
    /// Execute a read query rooted at `root`.
    Read {
        /// The query type.
        kind: QueryKind,
        /// The root object the query starts from.
        root: ObjectId,
    },
    /// Create a new object structurally related to `anchor`.
    Create {
        /// The existing object the new one attaches to.
        anchor: ObjectId,
        /// How it attaches.
        mode: CreateMode,
    },
    /// Update an existing object in place.
    Update {
        /// The object being updated.
        target: ObjectId,
    },
}

/// How a created object attaches to the existing structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateMode {
    /// A new component of the anchor (configuration edge).
    NewComponent,
    /// A new descendant version derived from the anchor (version edge,
    /// inherited correspondences, copy-vs-reference attribute decisions).
    NewVersion,
}

/// One transaction: a read (single op) or a write (1–k mutations, the
/// checkin pattern).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// The operations, executed in order under one commit.
    pub ops: Vec<TxnOp>,
}

impl Transaction {
    /// Whether the transaction only reads.
    pub fn is_read(&self) -> bool {
        self.ops.iter().all(|op| matches!(op, TxnOp::Read { .. }))
    }
}

/// A user session: 5–20 transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// The transactions, in submission order.
    pub transactions: Vec<Transaction>,
}

impl Session {
    /// Count of read transactions.
    pub fn reads(&self) -> usize {
        self.transactions.iter().filter(|t| t.is_read()).count()
    }

    /// Count of write transactions.
    pub fn writes(&self) -> usize {
        self.transactions.len() - self.reads()
    }
}

/// Build a checkout macro: `components` component retrievals plus one
/// corresponding-objects retrieval, all rooted at `root` (§4.1).
pub fn checkout(root: ObjectId, components: usize) -> Vec<Transaction> {
    let mut txns = Vec::with_capacity(components + 1);
    for _ in 0..components {
        txns.push(Transaction {
            ops: vec![TxnOp::Read {
                kind: QueryKind::CompositeRetrieval,
                root,
            }],
        });
    }
    txns.push(Transaction {
        ops: vec![TxnOp::Read {
            kind: QueryKind::CorrespondentRetrieval,
            root,
        }],
    });
    txns
}

/// Build a checkin macro: one transaction inserting `inserts` new
/// components under `anchor` and updating the anchor (§4.1).
pub fn checkin(anchor: ObjectId, inserts: usize) -> Transaction {
    let mut ops = Vec::with_capacity(inserts + 1);
    for _ in 0..inserts {
        ops.push(TxnOp::Create {
            anchor,
            mode: CreateMode::NewComponent,
        });
    }
    ops.push(TxnOp::Update { target: anchor });
    Transaction { ops }
}

/// Sample the number of transactions in a session from the spec's range.
pub fn sample_session_length(spec: &WorkloadSpec, rng: &mut SimRng) -> u32 {
    rng.range_inclusive(spec.session_txns.0 as u64, spec.session_txns.1 as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::StructureDensity;

    #[test]
    fn checkout_shape() {
        let txns = checkout(ObjectId(3), 4);
        assert_eq!(txns.len(), 5);
        assert!(txns.iter().all(|t| t.is_read()));
        assert!(matches!(
            txns[4].ops[0],
            TxnOp::Read {
                kind: QueryKind::CorrespondentRetrieval,
                ..
            }
        ));
    }

    #[test]
    fn checkin_shape() {
        let txn = checkin(ObjectId(7), 3);
        assert_eq!(txn.ops.len(), 4);
        assert!(!txn.is_read());
        assert!(matches!(txn.ops[3], TxnOp::Update { .. }));
    }

    #[test]
    fn session_counts() {
        let s = Session {
            transactions: vec![checkout(ObjectId(1), 1).remove(0), checkin(ObjectId(1), 1)],
        };
        assert_eq!(s.reads(), 1);
        assert_eq!(s.writes(), 1);
    }

    #[test]
    fn session_length_in_spec_range() {
        let spec = WorkloadSpec::new(StructureDensity::Low3, 5.0);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100 {
            let n = sample_session_length(&spec, &mut rng);
            assert!((5..=20).contains(&n));
        }
    }
}
