//! The seven engineering-database query types (§4.1).

use std::fmt;

/// The paper's taxonomy of engineering-design procedure calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// (1) Simple object lookup by unique name.
    SimpleLookup,
    /// (2) Component object retrieval: navigate upward from a component to
    /// its composites.
    ComponentRetrieval,
    /// (3) Composite object retrieval: the object plus a fan-out of its
    /// component objects.
    CompositeRetrieval,
    /// (4) Descendant version retrieval.
    DescendantRetrieval,
    /// (5) Ancestor version retrieval.
    AncestorRetrieval,
    /// (6) Corresponding objects retrieval.
    CorrespondentRetrieval,
    /// (7) Object insertion / deletion / update.
    Mutation,
}

impl QueryKind {
    /// The six read-only query types, in paper order.
    pub const READS: [QueryKind; 6] = [
        QueryKind::SimpleLookup,
        QueryKind::ComponentRetrieval,
        QueryKind::CompositeRetrieval,
        QueryKind::DescendantRetrieval,
        QueryKind::AncestorRetrieval,
        QueryKind::CorrespondentRetrieval,
    ];

    /// Whether this query reads without writing.
    pub fn is_read(self) -> bool {
        self != QueryKind::Mutation
    }

    /// Whether this query navigates structural relationships (vs a simple
    /// name lookup). Used to classify trace events into structure vs
    /// simple reads (§3.2).
    pub fn is_structural(self) -> bool {
        !matches!(self, QueryKind::SimpleLookup | QueryKind::Mutation)
    }
}

impl fmt::Display for QueryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QueryKind::SimpleLookup => "simple-lookup",
            QueryKind::ComponentRetrieval => "component-retrieval",
            QueryKind::CompositeRetrieval => "composite-retrieval",
            QueryKind::DescendantRetrieval => "descendant-retrieval",
            QueryKind::AncestorRetrieval => "ancestor-retrieval",
            QueryKind::CorrespondentRetrieval => "correspondent-retrieval",
            QueryKind::Mutation => "mutation",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_and_structure_classification() {
        assert_eq!(QueryKind::READS.len(), 6);
        assert!(QueryKind::READS.iter().all(|q| q.is_read()));
        assert!(!QueryKind::Mutation.is_read());
        assert!(QueryKind::CompositeRetrieval.is_structural());
        assert!(!QueryKind::SimpleLookup.is_structural());
        assert!(!QueryKind::Mutation.is_structural());
    }
}
