//! Workload characterisation: structure density and read/write ratio
//! (Table 4.1, parameters F and G).

use semcluster_sim::SimRng;
use std::fmt;

/// Structure-density operating levels. "Low-3 means every structural
//  retrieval returns ≤ 3 component or composite objects", med is 4–9,
/// high is ≥ 10 (§4.2 / Figure 3.4's 0–3 / 4–10 / 10+ buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureDensity {
    /// ≤ 3 objects per structural retrieval.
    Low3,
    /// 4–9 objects.
    Med5,
    /// ≥ 10 objects.
    High10,
}

impl StructureDensity {
    /// The three paper levels in order.
    pub const ALL: [StructureDensity; 3] = [
        StructureDensity::Low3,
        StructureDensity::Med5,
        StructureDensity::High10,
    ];

    /// Sample a fan-out for one structural retrieval.
    pub fn sample_fanout(self, rng: &mut SimRng) -> usize {
        let (lo, hi) = self.fanout_range();
        rng.range_inclusive(lo as u64, hi as u64) as usize
    }

    /// Inclusive fan-out range of the level.
    pub fn fanout_range(self) -> (usize, usize) {
        match self {
            StructureDensity::Low3 => (1, 3),
            StructureDensity::Med5 => (4, 9),
            StructureDensity::High10 => (10, 15),
        }
    }

    /// Classify an observed fan-out into a density bucket (trace
    /// analysis; Figure 3.4's 0–3 / 4–10 / >10 buckets).
    pub fn classify(fanout: usize) -> StructureDensity {
        match fanout {
            0..=3 => StructureDensity::Low3,
            4..=10 => StructureDensity::Med5,
            _ => StructureDensity::High10,
        }
    }

    /// Paper-style label (`low-3`, `med-5`, `high-10`).
    pub fn label(self) -> &'static str {
        match self {
            StructureDensity::Low3 => "low-3",
            StructureDensity::Med5 => "med-5",
            StructureDensity::High10 => "high-10",
        }
    }
}

impl fmt::Display for StructureDensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Full workload characterisation of one simulated session mix.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Structure density level (parameter F).
    pub density: StructureDensity,
    /// Read/write ratio (parameter G): reads per write, e.g. 5, 10, 100.
    pub rw_ratio: f64,
    /// Inclusive range of transactions per user session (§4.1: 5–20).
    pub session_txns: (u32, u32),
    /// Inclusive range of object writes per write transaction (checkin
    /// operations "invoke some object insertions and updating").
    pub writes_per_txn: (u32, u32),
    /// Probability that a mutation creates a new object (vs updating an
    /// existing one).
    pub create_fraction: f64,
    /// Probability that a non-create mutation deletes its target instead
    /// of updating it (§4.1's query type 7 covers
    /// insertion/deletion/updating). Defaults to 0 — the paper's figure
    /// workloads are deletion-free, and a zero fraction draws no
    /// randomness, keeping archived exhibit runs bit-reproducible. Set it
    /// explicitly to exercise deletion.
    pub delete_fraction: f64,
}

impl WorkloadSpec {
    /// A workload at the given density and R/W ratio with paper-default
    /// session shapes.
    pub fn new(density: StructureDensity, rw_ratio: f64) -> Self {
        assert!(rw_ratio > 0.0, "read/write ratio must be positive");
        WorkloadSpec {
            density,
            rw_ratio,
            session_txns: (5, 20),
            writes_per_txn: (1, 3),
            create_fraction: 0.4,
            delete_fraction: 0.0,
        }
    }

    /// Probability that the next transaction is a read.
    pub fn read_probability(&self) -> f64 {
        self.rw_ratio / (self.rw_ratio + 1.0)
    }

    /// Paper-style label, e.g. `low3-5` or `hi10-100`.
    pub fn label(&self) -> String {
        let d = match self.density {
            StructureDensity::Low3 => "low3",
            StructureDensity::Med5 => "med5",
            StructureDensity::High10 => "hi10",
        };
        format!("{d}-{}", self.rw_ratio.round() as u64)
    }

    /// The six workload corners of Figure 5.1 (densities × rw 5 and 100).
    pub fn figure51_corners() -> Vec<WorkloadSpec> {
        let mut out = Vec::new();
        for d in StructureDensity::ALL {
            for rw in [5.0, 100.0] {
                out.push(WorkloadSpec::new(d, rw));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_ranges_match_levels() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..200 {
            let f = StructureDensity::Low3.sample_fanout(&mut rng);
            assert!((1..=3).contains(&f));
            let f = StructureDensity::Med5.sample_fanout(&mut rng);
            assert!((4..=9).contains(&f));
            let f = StructureDensity::High10.sample_fanout(&mut rng);
            assert!(f >= 10);
        }
    }

    #[test]
    fn classification_buckets() {
        assert_eq!(StructureDensity::classify(0), StructureDensity::Low3);
        assert_eq!(StructureDensity::classify(3), StructureDensity::Low3);
        assert_eq!(StructureDensity::classify(4), StructureDensity::Med5);
        assert_eq!(StructureDensity::classify(10), StructureDensity::Med5);
        assert_eq!(StructureDensity::classify(11), StructureDensity::High10);
    }

    #[test]
    fn read_probability_from_ratio() {
        let w = WorkloadSpec::new(StructureDensity::Low3, 5.0);
        assert!((w.read_probability() - 5.0 / 6.0).abs() < 1e-12);
        let w = WorkloadSpec::new(StructureDensity::High10, 100.0);
        assert!((w.read_probability() - 100.0 / 101.0).abs() < 1e-12);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(
            WorkloadSpec::new(StructureDensity::Low3, 5.0).label(),
            "low3-5"
        );
        assert_eq!(
            WorkloadSpec::new(StructureDensity::High10, 100.0).label(),
            "hi10-100"
        );
        assert_eq!(StructureDensity::Med5.label(), "med-5");
        assert_eq!(StructureDensity::Med5.to_string(), "med-5");
    }

    #[test]
    fn figure51_has_six_corners() {
        let corners = WorkloadSpec::figure51_corners();
        assert_eq!(corners.len(), 6);
        assert_eq!(corners[0].label(), "low3-5");
        assert_eq!(corners[5].label(), "hi10-100");
    }
}
