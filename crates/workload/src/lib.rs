//! # semcluster-workload
//!
//! The workload-definition layer of the simulation model (§4.1) plus the
//! Section 3 measurement study, reconstructed:
//!
//! * the seven engineering-DB query types ([`QueryKind`]),
//! * workload characterisation by structure density and read/write ratio
//!   ([`StructureDensity`], [`WorkloadSpec`]),
//! * sessions of 5–20 transactions with checkout/checkin macros
//!   ([`Session`], [`checkout`], [`checkin`]),
//! * stochastic transaction generation against a live database
//!   ([`gen_transaction`]),
//! * OCT tool profiles ([`oct_tools`]) encoding Figures 3.2–3.4, a
//!   synthetic trace generator ([`generate_trace`]) and the analyzer
//!   ([`analyze`]) that recovers those figures from a trace.

#![warn(missing_docs)]

mod generator;
pub mod oct;
mod phases;
mod query;
mod session;
mod spec;
pub mod trace;

pub use generator::{
    gen_read, gen_transaction, gen_write, pick_object, sample_read_kind, sample_write_shape,
};
pub use oct::{oct_tools, ToolProfile};
pub use phases::PhaseSchedule;
pub use query::QueryKind;
pub use session::{
    checkin, checkout, sample_session_length, CreateMode, Session, Transaction, TxnOp,
};
pub use spec::{StructureDensity, WorkloadSpec};
pub use trace::{analyze, generate_invocation, generate_trace, Invocation, ToolStats, TraceOp};
