//! Property-based tests for the Version Data Model.

use proptest::prelude::*;
use semcluster_vdm::{
    derive_version, validate, CopyVsRefModel, Database, ObjectId, ObjectName, RelFrequencies,
    RelKind, SyntheticDbSpec, TypeLattice,
};

fn name_strategy() -> impl Strategy<Value = ObjectName> {
    ("[A-Za-z][A-Za-z0-9_-]{0,12}", 0u32..1000, "[a-z]{1,8}")
        .prop_map(|(base, v, rep)| ObjectName::new(base, v, rep))
}

proptest! {
    /// `name[i].type` display/parse is a round trip.
    #[test]
    fn object_name_roundtrip(name in name_strategy()) {
        let text = name.to_string();
        let parsed: ObjectName = text.parse().expect("own display must parse");
        prop_assert_eq!(parsed, name);
    }

    /// Synthetic databases of any shape pass referential-integrity
    /// validation and report consistent statistics.
    #[test]
    fn synthetic_db_always_validates(
        modules in 1usize..5,
        depth in 0usize..4,
        fan_lo in 1usize..3,
        fan_extra in 0usize..3,
        corr in 0.0f64..1.0,
        vers in 0.0f64..0.8,
        seed in any::<u64>(),
    ) {
        let spec = SyntheticDbSpec {
            modules,
            depth,
            fanout: (fan_lo, fan_lo + fan_extra),
            representations: vec!["layout".into(), "netlist".into()],
            correspondence_prob: corr,
            version_prob: vers,
            body_bytes: (32, 256),
            seed,
        };
        let (db, stats) = spec.build();
        prop_assert_eq!(db.object_count(), stats.objects);
        prop_assert!(validate(&db).is_empty());
    }

    /// Version derivation preserves integrity and always inherits every
    /// parent correspondence.
    #[test]
    fn derive_version_preserves_integrity(
        seed in any::<u64>(),
        derivations in 1usize..12,
    ) {
        let spec = SyntheticDbSpec {
            modules: 2,
            depth: 2,
            fanout: (2, 3),
            correspondence_prob: 0.7,
            version_prob: 0.0,
            ..SyntheticDbSpec::default()
        };
        let (mut db, _) = SyntheticDbSpec { seed, ..spec }.build();
        let model = CopyVsRefModel::default();
        let n = db.object_count() as u32;
        for k in 0..derivations {
            let parent = ObjectId((seed as u32).wrapping_add(k as u32 * 7919) % n);
            let parent_corrs = db.graph().correspondents(parent).len();
            let derived = derive_version(&mut db, parent, &model).expect("derivable");
            prop_assert_eq!(derived.inherited_correspondences, parent_corrs);
            prop_assert!(db.graph().ancestors(derived.id).contains(&parent));
        }
        prop_assert!(validate(&db).is_empty());
    }

    /// Graph edges added in any order stay bidirectionally consistent and
    /// are all removable.
    #[test]
    fn graph_add_remove_consistency(
        edges in proptest::collection::vec((0u32..30, 0u32..30), 1..60),
    ) {
        let mut lattice = TypeLattice::new();
        let ty = lattice.define_simple("t", RelFrequencies::UNIFORM).unwrap();
        let mut db = Database::with_lattice(lattice);
        for i in 0..30u32 {
            db.create_object(ObjectName::new(format!("O{i}"), 1, "t"), ty, 10)
                .unwrap();
        }
        let mut added = Vec::new();
        for (a, b) in edges {
            if db
                .relate(RelKind::Configuration, ObjectId(a), ObjectId(b))
                .is_ok()
            {
                added.push((a, b));
            }
        }
        // Forward and backward views agree.
        for &(a, b) in &added {
            prop_assert!(db.graph().components(ObjectId(a)).contains(&ObjectId(b)));
            prop_assert!(db.graph().composites(ObjectId(b)).contains(&ObjectId(a)));
        }
        prop_assert_eq!(db.graph().edge_count(), added.len() as u64);
        for (a, b) in added {
            db.unrelate(RelKind::Configuration, ObjectId(a), ObjectId(b))
                .unwrap();
        }
        prop_assert_eq!(db.graph().edge_count(), 0);
    }

    /// Version-history edges never create cycles, whatever order they
    /// arrive in.
    #[test]
    fn version_history_stays_acyclic(
        edges in proptest::collection::vec((0u32..12, 0u32..12), 1..80),
    ) {
        let mut lattice = TypeLattice::new();
        let ty = lattice.define_simple("t", RelFrequencies::UNIFORM).unwrap();
        let mut db = Database::with_lattice(lattice);
        for i in 0..12u32 {
            // Same lineage so validation would not flag the edges.
            db.create_object(ObjectName::new("X", i, "t"), ty, 10).unwrap();
        }
        for (a, b) in edges {
            let _ = db.relate(RelKind::VersionHistory, ObjectId(a), ObjectId(b));
        }
        // If a cycle existed, some node would be its own transitive
        // ancestor. Walk each node's ancestor closure.
        for i in 0..12u32 {
            let start = ObjectId(i);
            let mut stack = vec![start];
            let mut seen = std::collections::HashSet::new();
            while let Some(cur) = stack.pop() {
                for &anc in db.graph().ancestors(cur) {
                    prop_assert_ne!(anc, start, "cycle through {:?}", start);
                    if seen.insert(anc) {
                        stack.push(anc);
                    }
                }
            }
        }
    }

    /// The dominant relationship kind is invariant under uniform scaling.
    #[test]
    fn dominant_kind_scale_invariant(
        a in 0.1f64..10.0, b in 0.1f64..10.0, c in 0.1f64..10.0,
        d in 0.1f64..10.0, e in 0.1f64..10.0, f in 0.1f64..10.0,
        scale in 0.1f64..100.0,
    ) {
        let freqs = RelFrequencies {
            config_down: a,
            config_up: b,
            version_up: c,
            version_down: d,
            correspondence: e,
            inheritance: f,
        };
        prop_assert_eq!(freqs.dominant_kind(), freqs.scaled(scale).dominant_kind());
    }
}
