//! External object names.
//!
//! The Version Data Model denotes every object by the triple
//! `name[i].type` — e.g. `ALU[4].layout` is version 4 of the ALU's layout
//! representation. [`ObjectName`] stores the triple and round-trips through
//! the paper's textual syntax.

use std::fmt;
use std::str::FromStr;

/// The external name triple `base[version].representation`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectName {
    /// Design-object name, e.g. `ALU`.
    pub base: String,
    /// Version number `i` in `name[i].type`.
    pub version: u32,
    /// Representation type name, e.g. `layout` or `netlist`.
    pub rep: String,
}

impl ObjectName {
    /// Construct a name triple.
    pub fn new(base: impl Into<String>, version: u32, rep: impl Into<String>) -> Self {
        ObjectName {
            base: base.into(),
            version,
            rep: rep.into(),
        }
    }

    /// The same design object at the next version number.
    pub fn successor(&self) -> ObjectName {
        ObjectName {
            base: self.base.clone(),
            version: self.version + 1,
            rep: self.rep.clone(),
        }
    }

    /// Whether two names denote the same design entity in different
    /// representations (candidates for a correspondence relationship).
    pub fn same_entity(&self, other: &ObjectName) -> bool {
        self.base == other.base && self.rep != other.rep
    }

    /// Whether `other` could be a version-history relative: same base and
    /// representation, different version.
    pub fn same_lineage(&self, other: &ObjectName) -> bool {
        self.base == other.base && self.rep == other.rep && self.version != other.version
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}].{}", self.base, self.version, self.rep)
    }
}

/// Error parsing an [`ObjectName`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNameError {
    input: String,
    reason: &'static str,
}

impl fmt::Display for ParseNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot parse {:?} as name[i].type: {}",
            self.input, self.reason
        )
    }
}

impl std::error::Error for ParseNameError {}

impl FromStr for ObjectName {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason| ParseNameError {
            input: s.to_string(),
            reason,
        };
        let open = s.find('[').ok_or_else(|| err("missing '['"))?;
        let close = s.find(']').ok_or_else(|| err("missing ']'"))?;
        if close < open {
            return Err(err("']' before '['"));
        }
        let base = &s[..open];
        if base.is_empty() {
            return Err(err("empty base name"));
        }
        let version: u32 = s[open + 1..close]
            .parse()
            .map_err(|_| err("version is not an unsigned integer"))?;
        let rest = &s[close + 1..];
        let rep = rest
            .strip_prefix('.')
            .ok_or_else(|| err("missing '.' after ']'"))?;
        if rep.is_empty() {
            return Err(err("empty representation type"));
        }
        Ok(ObjectName::new(base, version, rep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_syntax() {
        let n = ObjectName::new("ALU", 4, "layout");
        assert_eq!(n.to_string(), "ALU[4].layout");
    }

    #[test]
    fn parse_roundtrip() {
        let n: ObjectName = "DATAPATH[2].netlist".parse().unwrap();
        assert_eq!(n, ObjectName::new("DATAPATH", 2, "netlist"));
        assert_eq!(n.to_string().parse::<ObjectName>().unwrap(), n);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "ALU.layout",
            "[4].layout",
            "ALU[x].layout",
            "ALU[4]layout",
            "ALU[4].",
            "ALU]4[.layout",
        ] {
            assert!(bad.parse::<ObjectName>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn successor_bumps_version() {
        let n = ObjectName::new("ALU", 2, "layout");
        assert_eq!(n.successor(), ObjectName::new("ALU", 3, "layout"));
    }

    #[test]
    fn entity_and_lineage_predicates() {
        let layout2 = ObjectName::new("ALU", 2, "layout");
        let netlist3 = ObjectName::new("ALU", 3, "netlist");
        let layout5 = ObjectName::new("ALU", 5, "layout");
        assert!(layout2.same_entity(&netlist3));
        assert!(!layout2.same_entity(&layout5));
        assert!(layout2.same_lineage(&layout5));
        assert!(!layout2.same_lineage(&netlist3));
    }
}
