//! Instance-to-instance inheritance.
//!
//! The paper's Version Data Model lets an offspring version inherit
//! properties, behaviours, structural relationships and constraints
//! *directly from its parent version* rather than from its type. Two
//! pieces are implemented here:
//!
//! 1. **Relationship propagation** — a new descendant of `ALU[2].layout`
//!    inherits `ALU[2].layout`'s correspondence relationships by default
//!    (§1's motivating example).
//! 2. **Copy-vs-reference costing** — for each inheritable attribute, a
//!    cost formula chooses between *implementation by copy* (value
//!    duplicated onto the child; cheap reads, storage + update-propagation
//!    cost) and *by reference* (value stays on the parent; extra traversal
//!    I/O per read, recorded as a first-class inheritance link the
//!    clustering algorithm can see).

use crate::db::{Database, DbError};
use crate::id::ObjectId;
use crate::object::{AttrImpl, REF_SIZE_BYTES};
use crate::relationship::RelKind;

/// Cost weights for the copy-vs-reference decision. All unit-free; only
/// ratios matter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopyVsRefModel {
    /// Cost per stored byte of a copied value (space + extra write I/O
    /// when the page spills).
    pub storage_per_byte: f64,
    /// Cost per unit of the attribute's update weight: every source update
    /// must be re-propagated to copies.
    pub update_propagation: f64,
    /// Cost per unit of the attribute's read weight when implemented by
    /// reference: each read may traverse to the provider's page.
    pub traversal_per_read: f64,
}

impl Default for CopyVsRefModel {
    fn default() -> Self {
        // Defaults chosen so that large, hot-update attributes go by
        // reference and small, hot-read ones get copied.
        CopyVsRefModel {
            storage_per_byte: 0.01,
            update_propagation: 2.0,
            traversal_per_read: 1.0,
        }
    }
}

/// Which implementation the cost model picked for one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImplChoice {
    /// Duplicate the value onto the inheritor.
    Copy,
    /// Keep the value on the provider; dereference on read.
    Reference,
}

impl CopyVsRefModel {
    /// Expected cost of implementing an inherited attribute by copy.
    pub fn copy_cost(&self, size_bytes: u32, update_weight: f64) -> f64 {
        size_bytes as f64 * self.storage_per_byte + update_weight * self.update_propagation
    }

    /// Expected cost of implementing an inherited attribute by reference.
    pub fn reference_cost(&self, read_weight: f64) -> f64 {
        REF_SIZE_BYTES as f64 * self.storage_per_byte + read_weight * self.traversal_per_read
    }

    /// Pick the cheaper implementation (ties go to copy: local reads keep
    /// navigation cheap, which is what read-dominated CAD workloads want).
    pub fn decide(&self, size_bytes: u32, read_weight: f64, update_weight: f64) -> ImplChoice {
        if self.copy_cost(size_bytes, update_weight) <= self.reference_cost(read_weight) {
            ImplChoice::Copy
        } else {
            ImplChoice::Reference
        }
    }
}

/// Result of deriving a new version.
#[derive(Debug, Clone)]
pub struct DerivedVersion {
    /// The new object.
    pub id: ObjectId,
    /// Attribute names implemented by copy.
    pub copied: Vec<String>,
    /// Attribute names implemented by reference (each added an
    /// inheritance edge parent → child).
    pub referenced: Vec<String>,
    /// Number of correspondence relationships inherited from the parent.
    pub inherited_correspondences: usize,
}

/// Derive a new descendant version of `parent`.
///
/// The child:
/// * is named `base[latest+1].rep`,
/// * has the parent's type and body size,
/// * is linked to the parent by a version-history edge,
/// * inherits the parent's correspondence relationships by default, and
/// * implements each inheritable attribute by copy or by reference per
///   `model`; by-reference attributes add an inheritance edge so the
///   physical layer can cluster child near parent.
pub fn derive_version(
    db: &mut Database,
    parent: ObjectId,
    model: &CopyVsRefModel,
) -> Result<DerivedVersion, DbError> {
    let (parent_name, parent_ty, parent_body) = {
        let p = db.get(parent)?;
        (p.name.clone(), p.ty, p.body_bytes)
    };
    let next = db
        .latest_version(&parent_name.base, &parent_name.rep)
        .map(|v| v + 1)
        .unwrap_or(parent_name.version + 1);
    let child_name =
        crate::name::ObjectName::new(parent_name.base.clone(), next, parent_name.rep.clone());

    let child = db.create_object(child_name, parent_ty, parent_body)?;
    db.relate(RelKind::VersionHistory, parent, child)?;

    // Inherit correspondences: the paper's default propagation rule.
    let correspondents: Vec<ObjectId> = db.graph().correspondents(parent).to_vec();
    let mut inherited = 0;
    for c in correspondents {
        if db.relate(RelKind::Correspondence, child, c).is_ok() {
            inherited += 1;
        }
    }

    // Copy-vs-reference decisions for inheritable attributes.
    let defs = db.lattice().resolve_attributes(parent_ty)?;
    let mut copied = Vec::new();
    let mut referenced = Vec::new();
    let mut any_reference = false;
    {
        let child_obj = db.get_mut(child)?;
        for def in &defs {
            if !def.inheritable {
                continue;
            }
            let slot = child_obj
                .attrs
                .iter_mut()
                .find(|a| a.name == def.name)
                .expect("created from the same resolved definitions");
            match model.decide(def.size_bytes, def.read_weight, def.update_weight) {
                ImplChoice::Copy => {
                    slot.implementation = AttrImpl::CopiedFrom(parent);
                    copied.push(def.name.clone());
                }
                ImplChoice::Reference => {
                    slot.implementation = AttrImpl::ReferenceTo(parent);
                    referenced.push(def.name.clone());
                    any_reference = true;
                }
            }
        }
    }
    if any_reference {
        db.relate(RelKind::Inheritance, parent, child)?;
    }

    Ok(DerivedVersion {
        id: child,
        copied,
        referenced,
        inherited_correspondences: inherited,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::ObjectName;
    use crate::relationship::RelFrequencies;
    use crate::types::{AttrDef, TypeLattice};

    fn setup() -> (Database, ObjectId, ObjectId) {
        let mut lattice = TypeLattice::new();
        let layout = lattice
            .define(
                "layout",
                vec![],
                vec![
                    // small + rarely updated → copy
                    AttrDef {
                        name: "owner".into(),
                        size_bytes: 16,
                        read_weight: 1.0,
                        update_weight: 0.1,
                        inheritable: true,
                    },
                    // large + hot-update → reference
                    AttrDef {
                        name: "design-rules".into(),
                        size_bytes: 4096,
                        read_weight: 0.2,
                        update_weight: 5.0,
                        inheritable: true,
                    },
                    // not inheritable → stays Local
                    AttrDef {
                        name: "checksum".into(),
                        size_bytes: 8,
                        read_weight: 1.0,
                        update_weight: 1.0,
                        inheritable: false,
                    },
                ],
                vec![],
                RelFrequencies::UNIFORM,
            )
            .unwrap();
        let netlist = lattice
            .define_simple("netlist", RelFrequencies::UNIFORM)
            .unwrap();
        let mut db = Database::with_lattice(lattice);
        let alu2 = db
            .create_object(ObjectName::new("ALU", 2, "layout"), layout, 500)
            .unwrap();
        let alu3n = db
            .create_object(ObjectName::new("ALU", 3, "netlist"), netlist, 300)
            .unwrap();
        db.relate(RelKind::Correspondence, alu2, alu3n).unwrap();
        (db, alu2, alu3n)
    }

    #[test]
    fn paper_example_correspondence_inherited() {
        // "If ALU[2].layout corresponds to ALU[3].netlist, then a new
        // descendant of ALU[2].layout should inherit this correspondence
        // relationship by default."
        let (mut db, alu2, alu3n) = setup();
        let derived = derive_version(&mut db, alu2, &CopyVsRefModel::default()).unwrap();
        assert_eq!(derived.inherited_correspondences, 1);
        assert_eq!(
            db.get(derived.id).unwrap().name,
            ObjectName::new("ALU", 3, "layout")
        );
        assert!(db.graph().correspondents(derived.id).contains(&alu3n));
        assert_eq!(db.graph().ancestors(derived.id), &[alu2]);
    }

    #[test]
    fn copy_vs_reference_split_follows_costs() {
        let (mut db, alu2, _) = setup();
        let derived = derive_version(&mut db, alu2, &CopyVsRefModel::default()).unwrap();
        assert_eq!(derived.copied, vec!["owner".to_string()]);
        assert_eq!(derived.referenced, vec!["design-rules".to_string()]);
        // Reference created an inheritance edge the clusterer can see.
        assert_eq!(db.graph().providers(derived.id), &[alu2]);
        // Non-inheritable attribute stayed local.
        let child = db.get(derived.id).unwrap();
        assert_eq!(
            child.attr("checksum").unwrap().implementation,
            AttrImpl::Local
        );
        assert_eq!(
            child.attr("design-rules").unwrap().implementation,
            AttrImpl::ReferenceTo(alu2)
        );
    }

    #[test]
    fn version_numbers_skip_to_latest() {
        let (mut db, alu2, _) = setup();
        let v3 = derive_version(&mut db, alu2, &CopyVsRefModel::default()).unwrap();
        // Deriving again from ALU[2] must not collide with ALU[3].
        let v4 = derive_version(&mut db, alu2, &CopyVsRefModel::default()).unwrap();
        assert_eq!(db.get(v3.id).unwrap().name.version, 3);
        assert_eq!(db.get(v4.id).unwrap().name.version, 4);
        // Both branch from ALU[2]: a version tree, not a chain.
        assert_eq!(db.graph().descendants(alu2).len(), 2);
    }

    #[test]
    fn cost_model_boundary() {
        let m = CopyVsRefModel {
            storage_per_byte: 0.0,
            update_propagation: 1.0,
            traversal_per_read: 1.0,
        };
        // copy cost = update_weight, ref cost = read_weight.
        assert_eq!(m.decide(100, 2.0, 1.0), ImplChoice::Copy);
        assert_eq!(m.decide(100, 1.0, 2.0), ImplChoice::Reference);
        // Tie → copy.
        assert_eq!(m.decide(100, 1.0, 1.0), ImplChoice::Copy);
    }

    #[test]
    fn derived_body_size_matches_parent() {
        let (mut db, alu2, _) = setup();
        let d = derive_version(&mut db, alu2, &CopyVsRefModel::default()).unwrap();
        assert_eq!(db.get(d.id).unwrap().body_bytes, 500);
    }
}
