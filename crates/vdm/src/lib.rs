//! # semcluster-vdm
//!
//! The **Version Data Model** of Katz/Chang: typed, versioned design
//! objects named `name[i].type`, connected by three first-class structural
//! relationships — **configuration** (composite/component), **version
//! history** (ancestor/descendant) and **correspondence** (equivalence
//! across representations) — plus **instance-to-instance inheritance**
//! links created when a descendant version inherits an attribute from its
//! parent by reference.
//!
//! This crate is purely logical: it knows nothing about pages, buffers or
//! disks. Its job is to expose exactly the semantics the physical layer
//! exploits:
//!
//! * per-relationship traversal frequencies, inherited from the type
//!   ([`RelFrequencies`], [`TypeLattice`]),
//! * the structure graph ([`StructureGraph`]) the clustering algorithm
//!   mines for co-reference, and
//! * the copy-vs-reference cost model ([`CopyVsRefModel`]) whose decisions
//!   add or remove inheritance arcs from that graph.
//!
//! ```
//! use semcluster_vdm::{
//!     CopyVsRefModel, Database, ObjectName, RelFrequencies, RelKind, TypeLattice,
//!     derive_version,
//! };
//!
//! let mut lattice = TypeLattice::new();
//! let layout = lattice.define_simple("layout", RelFrequencies::UNIFORM).unwrap();
//! let netlist = lattice.define_simple("netlist", RelFrequencies::UNIFORM).unwrap();
//! let mut db = Database::with_lattice(lattice);
//!
//! let alu2 = db.create_object(ObjectName::new("ALU", 2, "layout"), layout, 400).unwrap();
//! let alu3n = db.create_object(ObjectName::new("ALU", 3, "netlist"), netlist, 300).unwrap();
//! db.relate(RelKind::Correspondence, alu2, alu3n).unwrap();
//!
//! // A new descendant of ALU[2].layout inherits the correspondence.
//! let child = derive_version(&mut db, alu2, &CopyVsRefModel::default()).unwrap();
//! assert!(db.graph().correspondents(child.id).contains(&alu3n));
//! ```

#![warn(missing_docs)]

mod builder;
mod db;
mod dethash;
mod graph;
mod id;
mod inherit;
mod name;
mod object;
mod query;
mod relationship;
mod types;
mod validate;

pub use builder::{BuildStats, SyntheticDbSpec};
pub use db::{Database, DbError};
pub use dethash::{
    det_map_with_capacity, det_set_with_capacity, DetHashMap, DetHashSet, DetHasher, DetState,
};
pub use graph::{GraphError, StructureGraph};
pub use id::{ObjectId, TypeId};
pub use inherit::{derive_version, CopyVsRefModel, DerivedVersion, ImplChoice};
pub use name::{ObjectName, ParseNameError};
pub use object::{AttrImpl, AttrInstance, DesignObject, REF_SIZE_BYTES};
pub use query::{execute_read, ReadQuery};
pub use relationship::{Direction, RelFrequencies, RelKind};
pub use types::{AttrDef, OpDef, TypeDef, TypeError, TypeLattice};
pub use validate::{validate, Violation};
