//! Navigational query execution.
//!
//! §4.1 fixes seven query types for engineering-design procedure calls;
//! this module implements the six read types as pure functions over the
//! logical database, returning the object set a query materialises. The
//! simulation engine, the examples and the CLI all route retrievals
//! through here so the semantics live in exactly one place.

use crate::db::Database;
use crate::id::ObjectId;

/// The read query types of §4.1 (mutation, type 7, is an engine-side
/// operation — see the simulation engine and [`Database::delete_object`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadQuery {
    /// (1) Simple object lookup by unique name: just the object.
    SimpleLookup,
    /// (2) Component → composite navigation (upward; §3.4: upward
    /// accesses mostly return a single object).
    ComponentRetrieval,
    /// (3) Composite retrieval: the object plus up to `fanout` transitive
    /// components (breadth-first).
    CompositeRetrieval {
        /// Maximum components returned.
        fanout: usize,
    },
    /// (4) Immediate descendant versions.
    DescendantRetrieval,
    /// (5) Immediate ancestor versions.
    AncestorRetrieval,
    /// (6) All corresponding objects.
    CorrespondentRetrieval,
}

/// Execute a read query rooted at `root`; the result always starts with
/// `root` itself, followed by the related objects in traversal order.
/// Tombstoned (deleted) objects are filtered out.
pub fn execute_read(db: &Database, query: ReadQuery, root: ObjectId) -> Vec<ObjectId> {
    let graph = db.graph();
    let mut out = vec![root];
    match query {
        ReadQuery::SimpleLookup => {}
        ReadQuery::ComponentRetrieval => {
            out.extend(graph.composites(root).iter().take(1).copied());
        }
        ReadQuery::CompositeRetrieval { fanout } => {
            out.extend(graph.transitive_components(root, fanout));
        }
        ReadQuery::DescendantRetrieval => out.extend_from_slice(graph.descendants(root)),
        ReadQuery::AncestorRetrieval => out.extend_from_slice(graph.ancestors(root)),
        ReadQuery::CorrespondentRetrieval => out.extend_from_slice(graph.correspondents(root)),
    }
    out.retain(|&o| db.is_live(o));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::ObjectName;
    use crate::relationship::{RelFrequencies, RelKind};
    use crate::types::TypeLattice;

    fn fixture() -> (Database, ObjectId, Vec<ObjectId>) {
        let mut lattice = TypeLattice::new();
        let layout = lattice
            .define_simple("layout", RelFrequencies::UNIFORM)
            .unwrap();
        let netlist = lattice
            .define_simple("netlist", RelFrequencies::UNIFORM)
            .unwrap();
        let mut db = Database::with_lattice(lattice);
        let root = db
            .create_object(ObjectName::new("TOP", 2, "layout"), layout, 100)
            .unwrap();
        let mut others = Vec::new();
        for (i, name) in [("A", "layout"), ("B", "layout")].iter().enumerate() {
            let id = db
                .create_object(ObjectName::new(name.0, 1, name.1), layout, 50)
                .unwrap();
            db.relate(RelKind::Configuration, root, id).unwrap();
            others.push(id);
            let _ = i;
        }
        let parent = db
            .create_object(ObjectName::new("TOP", 1, "layout"), layout, 90)
            .unwrap();
        db.relate(RelKind::VersionHistory, parent, root).unwrap();
        let corr = db
            .create_object(ObjectName::new("TOP", 2, "netlist"), netlist, 40)
            .unwrap();
        db.relate(RelKind::Correspondence, root, corr).unwrap();
        others.push(parent);
        others.push(corr);
        (db, root, others)
    }

    #[test]
    fn all_six_read_types_execute() {
        let (db, root, others) = fixture();
        let (a, b, parent, corr) = (others[0], others[1], others[2], others[3]);
        assert_eq!(execute_read(&db, ReadQuery::SimpleLookup, root), vec![root]);
        assert_eq!(
            execute_read(&db, ReadQuery::ComponentRetrieval, a),
            vec![a, root]
        );
        assert_eq!(
            execute_read(&db, ReadQuery::CompositeRetrieval { fanout: 10 }, root),
            vec![root, a, b]
        );
        assert_eq!(
            execute_read(&db, ReadQuery::CompositeRetrieval { fanout: 1 }, root).len(),
            2
        );
        assert_eq!(
            execute_read(&db, ReadQuery::AncestorRetrieval, root),
            vec![root, parent]
        );
        assert_eq!(
            execute_read(&db, ReadQuery::DescendantRetrieval, parent),
            vec![parent, root]
        );
        assert_eq!(
            execute_read(&db, ReadQuery::CorrespondentRetrieval, root),
            vec![root, corr]
        );
    }

    #[test]
    fn deleted_objects_disappear_from_results() {
        let (mut db, root, others) = fixture();
        let a = others[0];
        db.delete_object(a).unwrap();
        let result = execute_read(&db, ReadQuery::CompositeRetrieval { fanout: 10 }, root);
        assert!(!result.contains(&a));
        assert!(result.contains(&root));
    }
}
