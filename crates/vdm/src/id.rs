//! Dense integer identifiers for objects and types.
//!
//! Identifiers are newtyped `u32` indexes: the logical database stores
//! objects in arenas, so ids double as array indexes and stay cheap to hash
//! and copy.

use std::fmt;

/// Identifier of a design object instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

/// Identifier of an object type in the type lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(pub u32);

impl ObjectId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TypeId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(ObjectId(1) < ObjectId(2));
        assert_eq!(ObjectId(7).to_string(), "o7");
        assert_eq!(TypeId(3).to_string(), "t3");
        assert_eq!(ObjectId(9).index(), 9);
    }
}
