//! Design-object instances.

use crate::id::{ObjectId, TypeId};
use crate::name::ObjectName;

/// Size in bytes of an object reference stored inside another object
/// (an inheritance link implemented by reference).
pub const REF_SIZE_BYTES: u32 = 8;

/// How an (inherited) attribute is materialised on an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrImpl {
    /// Value stored directly on this object (defined here, not inherited).
    Local,
    /// Value copied from another instance at inheritance time; reads are
    /// local, but updates to the source do not propagate automatically.
    CopiedFrom(ObjectId),
    /// Value left on the provider; reads dereference an inheritance link
    /// (extra traversal, possibly extra I/O), updates happen in one place.
    ReferenceTo(ObjectId),
}

/// One attribute slot on an instance.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrInstance {
    /// Attribute name (matches an [`crate::types::AttrDef`]).
    pub name: String,
    /// Declared value size in bytes.
    pub size_bytes: u32,
    /// Where the value lives.
    pub implementation: AttrImpl,
}

impl AttrInstance {
    /// Bytes this slot occupies on the instance itself.
    pub fn stored_bytes(&self) -> u32 {
        match self.implementation {
            AttrImpl::Local | AttrImpl::CopiedFrom(_) => self.size_bytes,
            AttrImpl::ReferenceTo(_) => REF_SIZE_BYTES,
        }
    }

    /// The provider object, if the value is inherited by reference.
    pub fn reference_target(&self) -> Option<ObjectId> {
        match self.implementation {
            AttrImpl::ReferenceTo(o) => Some(o),
            _ => None,
        }
    }
}

/// A typed, versioned design object.
#[derive(Debug, Clone)]
pub struct DesignObject {
    /// Instance identifier.
    pub id: ObjectId,
    /// External `name[i].type` triple.
    pub name: ObjectName,
    /// Type in the lattice.
    pub ty: TypeId,
    /// Representation payload size in bytes, excluding attribute slots
    /// (geometry, netlist body, …).
    pub body_bytes: u32,
    /// Attribute slots.
    pub attrs: Vec<AttrInstance>,
}

impl DesignObject {
    /// Total storage footprint: body plus every attribute slot.
    pub fn size_bytes(&self) -> u32 {
        self.body_bytes
            + self
                .attrs
                .iter()
                .map(AttrInstance::stored_bytes)
                .sum::<u32>()
    }

    /// Find an attribute slot by name.
    pub fn attr(&self, name: &str) -> Option<&AttrInstance> {
        self.attrs.iter().find(|a| a.name == name)
    }

    /// Objects this instance reads through by-reference inherited
    /// attributes.
    pub fn reference_providers(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.attrs.iter().filter_map(AttrInstance::reference_target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> DesignObject {
        DesignObject {
            id: ObjectId(1),
            name: ObjectName::new("ALU", 2, "layout"),
            ty: TypeId(0),
            body_bytes: 100,
            attrs: vec![
                AttrInstance {
                    name: "owner".into(),
                    size_bytes: 16,
                    implementation: AttrImpl::Local,
                },
                AttrInstance {
                    name: "rules".into(),
                    size_bytes: 64,
                    implementation: AttrImpl::ReferenceTo(ObjectId(0)),
                },
                AttrInstance {
                    name: "bbox".into(),
                    size_bytes: 32,
                    implementation: AttrImpl::CopiedFrom(ObjectId(0)),
                },
            ],
        }
    }

    #[test]
    fn size_counts_copies_but_not_referenced_values() {
        let o = obj();
        assert_eq!(o.size_bytes(), 100 + 16 + REF_SIZE_BYTES + 32);
    }

    #[test]
    fn attr_lookup_and_reference_providers() {
        let o = obj();
        assert_eq!(o.attr("owner").unwrap().size_bytes, 16);
        assert!(o.attr("absent").is_none());
        let providers: Vec<_> = o.reference_providers().collect();
        assert_eq!(providers, vec![ObjectId(0)]);
    }
}
