//! The logical object database: type lattice + object arena + structure
//! graph, with name-based lookup.
//!
//! This is the *logical* half of the DBMS; physical placement lives in
//! `semcluster-storage` and is driven by `semcluster-clustering`.

use crate::graph::{GraphError, StructureGraph};
use crate::id::{ObjectId, TypeId};
use crate::name::ObjectName;
use crate::object::{AttrImpl, AttrInstance, DesignObject};
use crate::relationship::{RelFrequencies, RelKind};
use crate::types::{TypeError, TypeLattice};
use std::collections::HashMap;
use std::fmt;

/// Errors raised by logical-database operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// An object with this `name[i].type` triple already exists.
    DuplicateName(ObjectName),
    /// Unknown object id.
    UnknownObject(ObjectId),
    /// Propagated type-lattice error.
    Type(TypeError),
    /// Propagated structure-graph error.
    Graph(GraphError),
    /// The object was already deleted.
    Deleted(ObjectId),
    /// The object cannot be deleted while others inherit from it by
    /// reference.
    HasInheritors(ObjectId),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::DuplicateName(n) => write!(f, "object {n} already exists"),
            DbError::UnknownObject(o) => write!(f, "unknown object {o}"),
            DbError::Type(e) => write!(f, "type error: {e}"),
            DbError::Graph(e) => write!(f, "graph error: {e}"),
            DbError::Deleted(o) => write!(f, "object {o} is deleted"),
            DbError::HasInheritors(o) => {
                write!(f, "object {o} has by-reference inheritors")
            }
        }
    }
}

impl std::error::Error for DbError {}

impl From<TypeError> for DbError {
    fn from(e: TypeError) -> Self {
        DbError::Type(e)
    }
}

impl From<GraphError> for DbError {
    fn from(e: GraphError) -> Self {
        DbError::Graph(e)
    }
}

/// The logical design database.
#[derive(Debug, Clone, Default)]
pub struct Database {
    lattice: TypeLattice,
    objects: Vec<DesignObject>,
    live: Vec<bool>,
    by_name: HashMap<ObjectName, ObjectId>,
    latest: HashMap<(String, String), u32>,
    graph: StructureGraph,
}

impl Database {
    /// Empty database with an empty type lattice.
    pub fn new() -> Self {
        Self::default()
    }

    /// Database using a pre-built lattice.
    pub fn with_lattice(lattice: TypeLattice) -> Self {
        Database {
            lattice,
            ..Self::default()
        }
    }

    /// The type lattice (immutable access).
    pub fn lattice(&self) -> &TypeLattice {
        &self.lattice
    }

    /// The type lattice (mutable access, for schema evolution).
    pub fn lattice_mut(&mut self) -> &mut TypeLattice {
        &mut self.lattice
    }

    /// The structure graph (immutable access).
    pub fn graph(&self) -> &StructureGraph {
        &self.graph
    }

    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Create a new object. Attribute slots are instantiated locally from
    /// the type's resolved attribute definitions; instance-to-instance
    /// inheritance (see [`derive_version`](crate::derive_version)) can later rewrite them.
    pub fn create_object(
        &mut self,
        name: ObjectName,
        ty: TypeId,
        body_bytes: u32,
    ) -> Result<ObjectId, DbError> {
        if self.by_name.contains_key(&name) {
            return Err(DbError::DuplicateName(name));
        }
        let attrs: Vec<AttrInstance> = self
            .lattice
            .resolve_attributes(ty)?
            .into_iter()
            .map(|d| AttrInstance {
                name: d.name,
                size_bytes: d.size_bytes,
                implementation: AttrImpl::Local,
            })
            .collect();
        let id = ObjectId(self.objects.len() as u32);
        self.by_name.insert(name.clone(), id);
        let lineage = (name.base.clone(), name.rep.clone());
        match self.latest.get_mut(&lineage) {
            Some(v) => *v = (*v).max(name.version),
            None => {
                self.latest.insert(lineage, name.version);
            }
        }
        self.objects.push(DesignObject {
            id,
            name,
            ty,
            body_bytes,
            attrs,
        });
        self.live.push(true);
        self.graph.ensure_node(id);
        Ok(id)
    }

    /// Look up an object by id.
    pub fn get(&self, id: ObjectId) -> Result<&DesignObject, DbError> {
        self.objects
            .get(id.index())
            .ok_or(DbError::UnknownObject(id))
    }

    /// Mutable lookup by id.
    pub fn get_mut(&mut self, id: ObjectId) -> Result<&mut DesignObject, DbError> {
        self.objects
            .get_mut(id.index())
            .ok_or(DbError::UnknownObject(id))
    }

    /// Look up an object by its `name[i].type` triple.
    pub fn lookup(&self, name: &ObjectName) -> Option<ObjectId> {
        self.by_name.get(name).copied()
    }

    /// Latest version number in use for `base`/`rep` (None if unused).
    pub fn latest_version(&self, base: &str, rep: &str) -> Option<u32> {
        self.latest
            .get(&(base.to_string(), rep.to_string()))
            .copied()
    }

    /// Add a structural relationship.
    pub fn relate(&mut self, kind: RelKind, from: ObjectId, to: ObjectId) -> Result<(), DbError> {
        self.check_exists(from)?;
        self.check_exists(to)?;
        self.graph.add_edge(kind, from, to)?;
        Ok(())
    }

    /// Remove a structural relationship.
    pub fn unrelate(&mut self, kind: RelKind, from: ObjectId, to: ObjectId) -> Result<(), DbError> {
        self.graph.remove_edge(kind, from, to)?;
        Ok(())
    }

    /// Effective traversal frequencies for an object: inherited from its
    /// type (§2.1 — frequency information "is available in the
    /// corresponding data type and is inherited by the newly created
    /// instance").
    pub fn frequencies_of(&self, id: ObjectId) -> Result<RelFrequencies, DbError> {
        let ty = self.get(id)?.ty;
        Ok(self.lattice.frequencies(ty)?)
    }

    /// Iterate all live objects.
    pub fn objects(&self) -> impl Iterator<Item = &DesignObject> {
        self.objects.iter().filter(|o| self.live[o.id.index()])
    }

    /// Whether `id` refers to a live (non-deleted) object.
    pub fn is_live(&self, id: ObjectId) -> bool {
        self.live.get(id.index()).copied().unwrap_or(false)
    }

    /// Delete an object (§4.1 query type 7 covers deletion): all its
    /// structural relationships are removed, its name is freed, and its
    /// id becomes a tombstone — object ids are never reused, so stale
    /// references fail [`Database::is_live`] instead of aliasing.
    ///
    /// Deletion is refused while any other object inherits an attribute
    /// from this one by reference (the value would dangle).
    pub fn delete_object(&mut self, id: ObjectId) -> Result<(), DbError> {
        self.check_exists(id)?;
        if !self.live[id.index()] {
            return Err(DbError::Deleted(id));
        }
        if !self.graph.inheritors(id).is_empty() {
            return Err(DbError::HasInheritors(id));
        }
        for (kind, dir, other) in self.graph.related(id) {
            let (from, to) = match dir {
                crate::relationship::Direction::Forward => (id, other),
                crate::relationship::Direction::Backward => (other, id),
            };
            self.graph.remove_edge(kind, from, to)?;
        }
        let name = self.objects[id.index()].name.clone();
        self.by_name.remove(&name);
        self.live[id.index()] = false;
        Ok(())
    }

    fn check_exists(&self, id: ObjectId) -> Result<(), DbError> {
        if id.index() < self.objects.len() {
            Ok(())
        } else {
            Err(DbError::UnknownObject(id))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AttrDef;

    fn db_with_type() -> (Database, TypeId) {
        let mut lattice = TypeLattice::new();
        let ty = lattice
            .define(
                "layout",
                vec![],
                vec![AttrDef::new("bbox", 32)],
                vec![],
                RelFrequencies::UNIFORM,
            )
            .unwrap();
        (Database::with_lattice(lattice), ty)
    }

    #[test]
    fn create_and_lookup() {
        let (mut db, ty) = db_with_type();
        let name = ObjectName::new("ALU", 1, "layout");
        let id = db.create_object(name.clone(), ty, 200).unwrap();
        assert_eq!(db.lookup(&name), Some(id));
        let obj = db.get(id).unwrap();
        assert_eq!(obj.body_bytes, 200);
        assert_eq!(obj.attrs.len(), 1); // instantiated from the type
        assert_eq!(db.object_count(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut db, ty) = db_with_type();
        let name = ObjectName::new("ALU", 1, "layout");
        db.create_object(name.clone(), ty, 100).unwrap();
        assert_eq!(
            db.create_object(name.clone(), ty, 100),
            Err(DbError::DuplicateName(name))
        );
    }

    #[test]
    fn relate_validates_object_ids() {
        let (mut db, ty) = db_with_type();
        let a = db
            .create_object(ObjectName::new("A", 1, "layout"), ty, 10)
            .unwrap();
        assert_eq!(
            db.relate(RelKind::Configuration, a, ObjectId(42)),
            Err(DbError::UnknownObject(ObjectId(42)))
        );
        let b = db
            .create_object(ObjectName::new("B", 1, "layout"), ty, 10)
            .unwrap();
        db.relate(RelKind::Configuration, a, b).unwrap();
        assert_eq!(db.graph().components(a), &[b]);
        db.unrelate(RelKind::Configuration, a, b).unwrap();
        assert!(db.graph().components(a).is_empty());
    }

    #[test]
    fn latest_version_tracks_lineage() {
        let (mut db, ty) = db_with_type();
        for v in 1..=3 {
            db.create_object(ObjectName::new("ALU", v, "layout"), ty, 10)
                .unwrap();
        }
        db.create_object(ObjectName::new("ALU", 9, "netlist"), ty, 10)
            .unwrap();
        assert_eq!(db.latest_version("ALU", "layout"), Some(3));
        assert_eq!(db.latest_version("ALU", "netlist"), Some(9));
        assert_eq!(db.latest_version("MUL", "layout"), None);
    }

    #[test]
    fn delete_object_removes_edges_and_name() {
        let (mut db, ty) = db_with_type();
        let a = db
            .create_object(ObjectName::new("A", 1, "layout"), ty, 10)
            .unwrap();
        let b = db
            .create_object(ObjectName::new("B", 1, "layout"), ty, 10)
            .unwrap();
        db.relate(RelKind::Configuration, a, b).unwrap();
        db.delete_object(b).unwrap();
        assert!(!db.is_live(b));
        assert!(db.is_live(a));
        assert!(db.graph().components(a).is_empty());
        assert_eq!(db.lookup(&ObjectName::new("B", 1, "layout")), None);
        // Double delete and relating to a tombstone both fail.
        assert_eq!(db.delete_object(b), Err(DbError::Deleted(b)));
        assert_eq!(db.objects().count(), 1);
        // The freed name can be reused.
        let b2 = db
            .create_object(ObjectName::new("B", 1, "layout"), ty, 10)
            .unwrap();
        assert_ne!(b, b2, "ids are never reused");
    }

    #[test]
    fn delete_refused_while_inheritors_exist() {
        let (mut db, ty) = db_with_type();
        let parent = db
            .create_object(ObjectName::new("P", 1, "layout"), ty, 10)
            .unwrap();
        let child = db
            .create_object(ObjectName::new("C", 1, "layout"), ty, 10)
            .unwrap();
        db.relate(RelKind::Inheritance, parent, child).unwrap();
        assert_eq!(
            db.delete_object(parent),
            Err(DbError::HasInheritors(parent))
        );
        // Deleting the inheritor first unblocks the provider.
        db.delete_object(child).unwrap();
        db.delete_object(parent).unwrap();
    }

    #[test]
    fn frequencies_come_from_type() {
        let mut lattice = TypeLattice::new();
        let ty = lattice
            .define_simple(
                "netlist",
                RelFrequencies {
                    config_down: 7.0,
                    ..RelFrequencies::UNIFORM
                },
            )
            .unwrap();
        let mut db = Database::with_lattice(lattice);
        let id = db
            .create_object(ObjectName::new("X", 1, "netlist"), ty, 10)
            .unwrap();
        assert_eq!(db.frequencies_of(id).unwrap().config_down, 7.0);
    }
}
