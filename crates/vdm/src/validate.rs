//! Referential-integrity validation.
//!
//! OCT left attachment legality to its users, and the paper observes
//! (§3.5) that tools like SPARCS burn "a tremendous number of unnecessary
//! I/Os" re-scanning designs to check invariants the system could
//! guarantee. This module provides those guarantees as a whole-database
//! audit.

use crate::db::Database;
use crate::id::ObjectId;
use crate::object::AttrImpl;
use crate::relationship::RelKind;
use std::fmt;

/// One detected integrity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A graph edge references an object the database does not contain.
    DanglingEdge(RelKind, ObjectId, ObjectId),
    /// Version-history relatives must share base name and representation.
    VersionLineageMismatch(ObjectId, ObjectId),
    /// Corresponding objects must be the same design entity in different
    /// representations.
    CorrespondenceMismatch(ObjectId, ObjectId),
    /// Two objects are connected by more than one path of configuration
    /// edges of length one (duplicate terminal-path style anomaly).
    DuplicateConfiguration(ObjectId, ObjectId),
    /// An attribute implemented by copy/reference names a provider that
    /// does not exist.
    DanglingAttributeProvider(ObjectId, String, ObjectId),
    /// A by-reference attribute has no matching inheritance edge.
    MissingInheritanceLink(ObjectId, ObjectId),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DanglingEdge(k, a, b) => write!(f, "{k} edge {a}→{b} dangles"),
            Violation::VersionLineageMismatch(a, b) => {
                write!(f, "version edge {a}→{b} crosses lineages")
            }
            Violation::CorrespondenceMismatch(a, b) => {
                write!(f, "correspondence {a}↔{b} is not cross-representation")
            }
            Violation::DuplicateConfiguration(a, b) => {
                write!(f, "duplicate configuration edge {a}→{b}")
            }
            Violation::DanglingAttributeProvider(o, name, p) => {
                write!(f, "object {o} attribute {name:?} references missing {p}")
            }
            Violation::MissingInheritanceLink(p, c) => {
                write!(
                    f,
                    "by-reference attribute {p}→{c} lacks an inheritance edge"
                )
            }
        }
    }
}

/// Audit the whole database; returns every violation found (empty means
/// the database satisfies referential integrity).
pub fn validate(db: &Database) -> Vec<Violation> {
    let mut out = Vec::new();
    let n = db.object_count();
    let exists = |id: ObjectId| id.index() < n;

    for (kind, from, to) in db.graph().edges() {
        if !exists(from) || !exists(to) {
            out.push(Violation::DanglingEdge(kind, from, to));
            continue;
        }
        match kind {
            RelKind::VersionHistory => {
                let a = db.get(from).expect("checked");
                let b = db.get(to).expect("checked");
                if !(a.name.base == b.name.base && a.name.rep == b.name.rep) {
                    out.push(Violation::VersionLineageMismatch(from, to));
                }
            }
            RelKind::Correspondence => {
                let a = db.get(from).expect("checked");
                let b = db.get(to).expect("checked");
                if !a.name.same_entity(&b.name) {
                    out.push(Violation::CorrespondenceMismatch(from, to));
                }
            }
            RelKind::Configuration | RelKind::Inheritance => {}
        }
    }

    // Configuration duplicate detection (graph already prevents exact
    // duplicates; this catches any future representation change).
    for obj in db.objects() {
        let comps = db.graph().components(obj.id);
        for (i, &a) in comps.iter().enumerate() {
            if comps[i + 1..].contains(&a) {
                out.push(Violation::DuplicateConfiguration(obj.id, a));
            }
        }
    }

    // Attribute providers must exist and by-reference slots must have a
    // visible inheritance edge.
    for obj in db.objects() {
        for attr in &obj.attrs {
            match attr.implementation {
                AttrImpl::Local => {}
                AttrImpl::CopiedFrom(p) => {
                    if !exists(p) {
                        out.push(Violation::DanglingAttributeProvider(
                            obj.id,
                            attr.name.clone(),
                            p,
                        ));
                    }
                }
                AttrImpl::ReferenceTo(p) => {
                    if !exists(p) {
                        out.push(Violation::DanglingAttributeProvider(
                            obj.id,
                            attr.name.clone(),
                            p,
                        ));
                    } else if !db.graph().providers(obj.id).contains(&p) {
                        out.push(Violation::MissingInheritanceLink(p, obj.id));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inherit::{derive_version, CopyVsRefModel};
    use crate::name::ObjectName;
    use crate::relationship::RelFrequencies;
    use crate::types::TypeLattice;

    fn db2() -> (Database, ObjectId, ObjectId) {
        let mut lattice = TypeLattice::new();
        let layout = lattice
            .define_simple("layout", RelFrequencies::UNIFORM)
            .unwrap();
        let netlist = lattice
            .define_simple("netlist", RelFrequencies::UNIFORM)
            .unwrap();
        let mut db = Database::with_lattice(lattice);
        let a = db
            .create_object(ObjectName::new("ALU", 1, "layout"), layout, 10)
            .unwrap();
        let b = db
            .create_object(ObjectName::new("ALU", 1, "netlist"), netlist, 10)
            .unwrap();
        (db, a, b)
    }

    #[test]
    fn clean_database_passes() {
        let (mut db, a, b) = db2();
        db.relate(RelKind::Correspondence, a, b).unwrap();
        derive_version(&mut db, a, &CopyVsRefModel::default()).unwrap();
        assert!(validate(&db).is_empty());
    }

    #[test]
    fn cross_lineage_version_edge_flagged() {
        let (mut db, a, b) = db2();
        db.relate(RelKind::VersionHistory, a, b).unwrap();
        assert_eq!(validate(&db), vec![Violation::VersionLineageMismatch(a, b)]);
    }

    #[test]
    fn same_representation_correspondence_flagged() {
        let (mut db, a, _) = db2();
        let lattice_id = db.lattice().id_of("layout").unwrap();
        let a2 = db
            .create_object(ObjectName::new("ALU", 7, "layout"), lattice_id, 10)
            .unwrap();
        db.relate(RelKind::Correspondence, a, a2).unwrap();
        assert!(matches!(
            validate(&db).as_slice(),
            [Violation::CorrespondenceMismatch(_, _)]
        ));
    }
}
