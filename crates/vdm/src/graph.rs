//! The structure graph: every configuration / version / correspondence /
//! inheritance edge in the database, navigable in both directions.
//!
//! Unlike OCT's untyped "attachments", edges here are typed first-class
//! relationships — exactly the information the paper argues a storage
//! component should be able to exploit.

use crate::id::ObjectId;
use crate::relationship::{Direction, RelKind};
use std::collections::HashSet;
use std::fmt;

/// Errors raised by graph mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Self-relationships are meaningless in the model.
    SelfEdge(ObjectId),
    /// The edge already exists.
    DuplicateEdge(RelKind, ObjectId, ObjectId),
    /// The edge to remove does not exist.
    MissingEdge(RelKind, ObjectId, ObjectId),
    /// A version-history edge would create a cycle.
    VersionCycle(ObjectId, ObjectId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfEdge(o) => write!(f, "self edge on {o}"),
            GraphError::DuplicateEdge(k, a, b) => write!(f, "duplicate {k} edge {a}→{b}"),
            GraphError::MissingEdge(k, a, b) => write!(f, "no {k} edge {a}→{b}"),
            GraphError::VersionCycle(a, b) => {
                write!(f, "version edge {a}→{b} would create a cycle")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[derive(Debug, Clone, Default)]
struct Adjacency {
    out: [Vec<ObjectId>; 4],
    inc: [Vec<ObjectId>; 4],
}

/// Typed, bidirectional adjacency over all objects.
#[derive(Debug, Clone, Default)]
pub struct StructureGraph {
    nodes: Vec<Adjacency>,
    edges: u64,
}

impl StructureGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Make sure node storage covers `id`.
    pub fn ensure_node(&mut self, id: ObjectId) {
        if id.index() >= self.nodes.len() {
            self.nodes.resize_with(id.index() + 1, Adjacency::default);
        }
    }

    /// Number of node slots (max id + 1).
    pub fn node_slots(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of edges (symmetric edges counted once).
    pub fn edge_count(&self) -> u64 {
        self.edges
    }

    /// Add a typed edge `from → to`.
    ///
    /// Correspondence edges are symmetric: the edge becomes navigable
    /// forward from both ends. Version-history edges are checked for
    /// cycles (a version cannot be its own ancestor).
    pub fn add_edge(
        &mut self,
        kind: RelKind,
        from: ObjectId,
        to: ObjectId,
    ) -> Result<(), GraphError> {
        if from == to {
            return Err(GraphError::SelfEdge(from));
        }
        self.ensure_node(from);
        self.ensure_node(to);
        if self.nodes[from.index()].out[kind.index()].contains(&to) {
            return Err(GraphError::DuplicateEdge(kind, from, to));
        }
        if kind == RelKind::VersionHistory && self.reaches(kind, to, from) {
            return Err(GraphError::VersionCycle(from, to));
        }
        if kind.is_symmetric() {
            self.nodes[from.index()].out[kind.index()].push(to);
            self.nodes[to.index()].out[kind.index()].push(from);
        } else {
            self.nodes[from.index()].out[kind.index()].push(to);
            self.nodes[to.index()].inc[kind.index()].push(from);
        }
        self.edges += 1;
        Ok(())
    }

    /// Remove a typed edge `from → to` (either endpoint order works for
    /// symmetric kinds).
    pub fn remove_edge(
        &mut self,
        kind: RelKind,
        from: ObjectId,
        to: ObjectId,
    ) -> Result<(), GraphError> {
        let missing = || GraphError::MissingEdge(kind, from, to);
        if from.index() >= self.nodes.len() || to.index() >= self.nodes.len() {
            return Err(missing());
        }
        let k = kind.index();
        if kind.is_symmetric() {
            let pos_a = self.nodes[from.index()].out[k]
                .iter()
                .position(|&o| o == to)
                .ok_or_else(missing)?;
            self.nodes[from.index()].out[k].swap_remove(pos_a);
            let pos_b = self.nodes[to.index()].out[k]
                .iter()
                .position(|&o| o == from)
                .expect("symmetric edge stored on both ends");
            self.nodes[to.index()].out[k].swap_remove(pos_b);
        } else {
            let pos_o = self.nodes[from.index()].out[k]
                .iter()
                .position(|&o| o == to)
                .ok_or_else(missing)?;
            self.nodes[from.index()].out[k].swap_remove(pos_o);
            let pos_i = self.nodes[to.index()].inc[k]
                .iter()
                .position(|&o| o == from)
                .expect("directed edge stored on both ends");
            self.nodes[to.index()].inc[k].swap_remove(pos_i);
        }
        self.edges -= 1;
        Ok(())
    }

    /// Neighbors of `id` over `kind` in `dir`. Symmetric kinds return the
    /// same set for both directions.
    pub fn neighbors(&self, id: ObjectId, kind: RelKind, dir: Direction) -> &[ObjectId] {
        static EMPTY: [ObjectId; 0] = [];
        let Some(adj) = self.nodes.get(id.index()) else {
            return &EMPTY;
        };
        let k = kind.index();
        match (kind.is_symmetric(), dir) {
            (true, _) | (false, Direction::Forward) => &adj.out[k],
            (false, Direction::Backward) => &adj.inc[k],
        }
    }

    /// Component objects of a composite (configuration, downward).
    pub fn components(&self, id: ObjectId) -> &[ObjectId] {
        self.neighbors(id, RelKind::Configuration, Direction::Forward)
    }

    /// Composites containing this component (configuration, upward).
    pub fn composites(&self, id: ObjectId) -> &[ObjectId] {
        self.neighbors(id, RelKind::Configuration, Direction::Backward)
    }

    /// Immediate descendant versions.
    pub fn descendants(&self, id: ObjectId) -> &[ObjectId] {
        self.neighbors(id, RelKind::VersionHistory, Direction::Forward)
    }

    /// Immediate ancestor versions.
    pub fn ancestors(&self, id: ObjectId) -> &[ObjectId] {
        self.neighbors(id, RelKind::VersionHistory, Direction::Backward)
    }

    /// Corresponding objects in other representations.
    pub fn correspondents(&self, id: ObjectId) -> &[ObjectId] {
        self.neighbors(id, RelKind::Correspondence, Direction::Forward)
    }

    /// Objects inheriting from `id` via instance-to-instance links.
    pub fn inheritors(&self, id: ObjectId) -> &[ObjectId] {
        self.neighbors(id, RelKind::Inheritance, Direction::Forward)
    }

    /// Objects `id` inherits from via instance-to-instance links.
    pub fn providers(&self, id: ObjectId) -> &[ObjectId] {
        self.neighbors(id, RelKind::Inheritance, Direction::Backward)
    }

    /// Every related object of `id` with the kind and direction it is
    /// reached through. Symmetric kinds are reported once, as `Forward`.
    pub fn related(&self, id: ObjectId) -> Vec<(RelKind, Direction, ObjectId)> {
        let mut out = Vec::new();
        self.for_each_related(id, |kind, dir, n| {
            out.push((kind, dir, n));
            true
        });
        out
    }

    /// Visit every related object of `id` without allocating, in exactly
    /// the order [`Self::related`] reports them: kinds in `RelKind::ALL`
    /// order, the forward adjacency slice first, then the backward slice
    /// for non-symmetric kinds. The visitor returns `false` to stop
    /// early. This ordering is a determinism contract: the clustering
    /// cost model folds floating-point weights in visit order, so any
    /// reordering would change accumulated sums bit-for-bit.
    pub fn for_each_related(
        &self,
        id: ObjectId,
        mut f: impl FnMut(RelKind, Direction, ObjectId) -> bool,
    ) {
        for kind in RelKind::ALL {
            for &n in self.neighbors(id, kind, Direction::Forward) {
                if !f(kind, Direction::Forward, n) {
                    return;
                }
            }
            if !kind.is_symmetric() {
                for &n in self.neighbors(id, kind, Direction::Backward) {
                    if !f(kind, Direction::Backward, n) {
                        return;
                    }
                }
            }
        }
    }

    /// Downward structural fan-out of `id` (number of component objects a
    /// composite retrieval would return) — the paper's "structure density"
    /// of the object.
    pub fn downward_fanout(&self, id: ObjectId) -> usize {
        self.components(id).len()
    }

    /// Transitive closure of components, breadth-first, visiting at most
    /// `limit` objects (excluding the root). Models navigation like
    /// MOSAICO's cell→net→segment walks.
    pub fn transitive_components(&self, root: ObjectId, limit: usize) -> Vec<ObjectId> {
        let mut out = Vec::new();
        let mut seen = HashSet::with_capacity(limit.min(64) + 1);
        seen.insert(root);
        let mut frontier = vec![root];
        'bfs: while let Some(cur) = frontier.pop() {
            for &c in self.components(cur) {
                if seen.insert(c) {
                    out.push(c);
                    frontier.push(c);
                    if out.len() >= limit {
                        break 'bfs;
                    }
                }
            }
        }
        out
    }

    /// Whether `to` is reachable from `from` over forward `kind` edges.
    fn reaches(&self, kind: RelKind, from: ObjectId, to: ObjectId) -> bool {
        if from.index() >= self.nodes.len() {
            return false;
        }
        // Version chains and inheritance fans are tiny relative to the
        // database, so a hash-set BFS avoids an O(n) allocation per check.
        let mut seen = HashSet::with_capacity(16);
        seen.insert(from);
        let mut frontier = vec![from];
        while let Some(cur) = frontier.pop() {
            if cur == to {
                return true;
            }
            for &n in self.neighbors(cur, kind, Direction::Forward) {
                if seen.insert(n) {
                    frontier.push(n);
                }
            }
        }
        false
    }

    /// Iterate all stored edges as `(kind, from, to)`. Symmetric edges are
    /// yielded once, with `from < to`.
    pub fn edges(&self) -> impl Iterator<Item = (RelKind, ObjectId, ObjectId)> + '_ {
        self.nodes.iter().enumerate().flat_map(move |(i, adj)| {
            let from = ObjectId(i as u32);
            RelKind::ALL.into_iter().flat_map(move |kind| {
                adj.out[kind.index()]
                    .iter()
                    .filter(move |&&to| !kind.is_symmetric() || from < to)
                    .map(move |&to| (kind, from, to))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u32) -> ObjectId {
        ObjectId(i)
    }

    #[test]
    fn configuration_edges_are_bidirectional() {
        let mut g = StructureGraph::new();
        g.add_edge(RelKind::Configuration, o(0), o(1)).unwrap();
        g.add_edge(RelKind::Configuration, o(0), o(2)).unwrap();
        assert_eq!(g.components(o(0)), &[o(1), o(2)]);
        assert_eq!(g.composites(o(1)), &[o(0)]);
        assert_eq!(g.downward_fanout(o(0)), 2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn correspondence_is_symmetric() {
        let mut g = StructureGraph::new();
        g.add_edge(RelKind::Correspondence, o(3), o(4)).unwrap();
        assert_eq!(g.correspondents(o(3)), &[o(4)]);
        assert_eq!(g.correspondents(o(4)), &[o(3)]);
        // Duplicate in either orientation is rejected.
        assert!(g.add_edge(RelKind::Correspondence, o(4), o(3)).is_err());
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn version_cycles_rejected() {
        let mut g = StructureGraph::new();
        g.add_edge(RelKind::VersionHistory, o(0), o(1)).unwrap();
        g.add_edge(RelKind::VersionHistory, o(1), o(2)).unwrap();
        assert_eq!(
            g.add_edge(RelKind::VersionHistory, o(2), o(0)),
            Err(GraphError::VersionCycle(o(2), o(0)))
        );
        assert_eq!(g.ancestors(o(2)), &[o(1)]);
        assert_eq!(g.descendants(o(0)), &[o(1)]);
    }

    #[test]
    fn self_edges_rejected() {
        let mut g = StructureGraph::new();
        assert_eq!(
            g.add_edge(RelKind::Inheritance, o(5), o(5)),
            Err(GraphError::SelfEdge(o(5)))
        );
    }

    #[test]
    fn remove_edge_both_kinds() {
        let mut g = StructureGraph::new();
        g.add_edge(RelKind::Configuration, o(0), o(1)).unwrap();
        g.add_edge(RelKind::Correspondence, o(0), o(2)).unwrap();
        g.remove_edge(RelKind::Configuration, o(0), o(1)).unwrap();
        g.remove_edge(RelKind::Correspondence, o(2), o(0)).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert!(g.components(o(0)).is_empty());
        assert!(g.correspondents(o(2)).is_empty());
        assert!(g.remove_edge(RelKind::Configuration, o(0), o(1)).is_err());
    }

    #[test]
    fn related_lists_every_neighbor_once() {
        let mut g = StructureGraph::new();
        g.add_edge(RelKind::Configuration, o(0), o(1)).unwrap();
        g.add_edge(RelKind::VersionHistory, o(2), o(0)).unwrap();
        g.add_edge(RelKind::Correspondence, o(0), o(3)).unwrap();
        g.add_edge(RelKind::Inheritance, o(2), o(0)).unwrap();
        let rel = g.related(o(0));
        assert_eq!(rel.len(), 4);
        assert!(rel.contains(&(RelKind::Configuration, Direction::Forward, o(1))));
        assert!(rel.contains(&(RelKind::VersionHistory, Direction::Backward, o(2))));
        assert!(rel.contains(&(RelKind::Correspondence, Direction::Forward, o(3))));
        assert!(rel.contains(&(RelKind::Inheritance, Direction::Backward, o(2))));
    }

    #[test]
    fn for_each_related_matches_related_and_stops_early() {
        let mut g = StructureGraph::new();
        g.add_edge(RelKind::Configuration, o(0), o(1)).unwrap();
        g.add_edge(RelKind::VersionHistory, o(2), o(0)).unwrap();
        g.add_edge(RelKind::Correspondence, o(0), o(3)).unwrap();
        g.add_edge(RelKind::Inheritance, o(2), o(0)).unwrap();
        let mut walked = Vec::new();
        g.for_each_related(o(0), |k, d, n| {
            walked.push((k, d, n));
            true
        });
        assert_eq!(walked, g.related(o(0)), "identical visit order");
        let mut first_two = Vec::new();
        g.for_each_related(o(0), |k, d, n| {
            first_two.push((k, d, n));
            first_two.len() < 2
        });
        assert_eq!(first_two, g.related(o(0))[..2]);
    }

    #[test]
    fn transitive_components_bounded() {
        let mut g = StructureGraph::new();
        // 0 -> 1 -> 2 -> 3 -> 4 chain
        for i in 0..4 {
            g.add_edge(RelKind::Configuration, o(i), o(i + 1)).unwrap();
        }
        assert_eq!(g.transitive_components(o(0), 100).len(), 4);
        assert_eq!(g.transitive_components(o(0), 2).len(), 2);
        assert!(g.transitive_components(o(4), 10).is_empty());
    }

    #[test]
    fn edges_iterator_covers_all_once() {
        let mut g = StructureGraph::new();
        g.add_edge(RelKind::Configuration, o(0), o(1)).unwrap();
        g.add_edge(RelKind::Correspondence, o(1), o(2)).unwrap();
        g.add_edge(RelKind::VersionHistory, o(0), o(2)).unwrap();
        let all: Vec<_> = g.edges().collect();
        assert_eq!(all.len(), 3);
        assert!(all.contains(&(RelKind::Correspondence, o(1), o(2))));
    }

    #[test]
    fn neighbors_of_unknown_node_are_empty() {
        let g = StructureGraph::new();
        assert!(g.components(o(99)).is_empty());
        assert!(g.related(o(99)).is_empty());
    }
}
