//! Synthetic design-database construction.
//!
//! The simulation needs a populated database whose structural shape is
//! controllable (configuration fan-out ≈ structure density, version-chain
//! length, correspondence coverage). [`SyntheticDbSpec`] builds one
//! deterministically from a seed, mimicking a multi-representation VLSI
//! design: per module, a configuration tree is replicated across
//! representation types, corresponding nodes are cross-linked, and some
//! lineages get descendant versions.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::db::Database;
use crate::id::{ObjectId, TypeId};
use crate::inherit::{derive_version, CopyVsRefModel};
use crate::name::ObjectName;
use crate::relationship::{RelFrequencies, RelKind};
use crate::types::{AttrDef, TypeLattice};

/// Parameters of the synthetic database.
#[derive(Debug, Clone)]
pub struct SyntheticDbSpec {
    /// Number of independent top-level design modules.
    pub modules: usize,
    /// Depth of each module's configuration tree (root = depth 0).
    pub depth: usize,
    /// Inclusive fan-out range of composite objects.
    pub fanout: (usize, usize),
    /// Representation types replicated per module.
    pub representations: Vec<String>,
    /// Probability that a node is cross-linked to its twin in the next
    /// representation.
    pub correspondence_prob: f64,
    /// Probability that a node receives one descendant version.
    pub version_prob: f64,
    /// Inclusive body-size range in bytes.
    pub body_bytes: (u32, u32),
    /// Seed for the deterministic construction.
    pub seed: u64,
}

impl Default for SyntheticDbSpec {
    fn default() -> Self {
        SyntheticDbSpec {
            modules: 4,
            depth: 3,
            fanout: (2, 4),
            representations: vec!["layout".into(), "netlist".into()],
            correspondence_prob: 0.5,
            version_prob: 0.25,
            body_bytes: (64, 512),
            seed: 1,
        }
    }
}

/// What the builder produced, for assertions and reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildStats {
    /// Objects created (including derived versions).
    pub objects: usize,
    /// Configuration edges created.
    pub configuration_edges: usize,
    /// Correspondence edges created directly (inherited ones not counted).
    pub correspondence_edges: usize,
    /// Derived versions created.
    pub versions: usize,
}

impl SyntheticDbSpec {
    /// Build the database and report construction statistics.
    pub fn build(&self) -> (Database, BuildStats) {
        assert!(
            self.fanout.0 >= 1 && self.fanout.0 <= self.fanout.1,
            "invalid fan-out range"
        );
        assert!(
            !self.representations.is_empty(),
            "need at least one representation"
        );
        assert!(self.body_bytes.0 <= self.body_bytes.1, "invalid body range");

        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut lattice = TypeLattice::new();
        let base = lattice
            .define(
                "design-object",
                vec![],
                vec![AttrDef::new("owner", 16), AttrDef::new("modified", 8)],
                vec![],
                RelFrequencies::UNIFORM,
            )
            .expect("fresh lattice");
        let rep_types: Vec<TypeId> = self
            .representations
            .iter()
            .map(|rep| {
                lattice
                    .define(
                        rep.clone(),
                        vec![base],
                        vec![],
                        vec![],
                        // CAD tools mostly walk configurations downward and
                        // inherit along version history (§2.1c).
                        RelFrequencies {
                            config_down: 4.0,
                            config_up: 1.0,
                            version_up: 2.0,
                            version_down: 1.0,
                            correspondence: 1.5,
                            inheritance: 2.0,
                        },
                    )
                    .expect("unique representation names")
            })
            .collect();

        let mut db = Database::with_lattice(lattice);
        let mut stats = BuildStats {
            objects: 0,
            configuration_edges: 0,
            correspondence_edges: 0,
            versions: 0,
        };

        for m in 0..self.modules {
            // Same topology in every representation so twins align.
            let topology = self.sample_topology(&mut rng);
            let mut per_rep: Vec<Vec<ObjectId>> = Vec::new();
            for (r, rep) in self.representations.iter().enumerate() {
                let mut ids = Vec::with_capacity(topology.len());
                for (n, &parent) in topology.iter().enumerate() {
                    let body = rng.gen_range(self.body_bytes.0..=self.body_bytes.1);
                    let name = ObjectName::new(format!("M{m}N{n}"), 1, rep.clone());
                    let id = db
                        .create_object(name, rep_types[r], body)
                        .expect("synthetic names are unique");
                    stats.objects += 1;
                    if let Some(p) = parent {
                        db.relate(RelKind::Configuration, ids[p], id)
                            .expect("fresh edge");
                        stats.configuration_edges += 1;
                    }
                    ids.push(id);
                }
                per_rep.push(ids);
            }
            // Correspondences between twins in adjacent representations.
            for r in 1..per_rep.len() {
                for (n, &cur) in per_rep[r].iter().enumerate() {
                    if rng.gen_bool(self.correspondence_prob) {
                        db.relate(RelKind::Correspondence, per_rep[r - 1][n], cur)
                            .expect("fresh edge");
                        stats.correspondence_edges += 1;
                    }
                }
            }
            // Version derivation on a sample of nodes.
            let model = CopyVsRefModel::default();
            for ids in &per_rep {
                for &id in ids {
                    if rng.gen_bool(self.version_prob) {
                        derive_version(&mut db, id, &model).expect("derivable");
                        stats.versions += 1;
                        stats.objects += 1;
                    }
                }
            }
        }
        (db, stats)
    }

    /// Sample one tree topology: `parent[i]` is the index of node `i`'s
    /// composite (None for the root). Index order is creation order.
    fn sample_topology(&self, rng: &mut SmallRng) -> Vec<Option<usize>> {
        let mut parents = vec![None];
        let mut level = vec![0usize]; // indexes of current level
        for _ in 0..self.depth {
            let mut next = Vec::new();
            for &p in &level {
                let fanout = rng.gen_range(self.fanout.0..=self.fanout.1);
                for _ in 0..fanout {
                    let idx = parents.len();
                    parents.push(Some(p));
                    next.push(idx);
                }
            }
            level = next;
        }
        parents
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn build_is_deterministic() {
        let spec = SyntheticDbSpec::default();
        let (_, s1) = spec.build();
        let (_, s2) = spec.build();
        assert_eq!(s1, s2);
        let (_, s3) = SyntheticDbSpec {
            seed: 2,
            ..SyntheticDbSpec::default()
        }
        .build();
        assert_ne!(s1, s3);
    }

    #[test]
    fn stats_match_database() {
        let (db, stats) = SyntheticDbSpec::default().build();
        assert_eq!(db.object_count(), stats.objects);
        assert!(stats.configuration_edges > 0);
        assert!(stats.objects > stats.versions);
    }

    #[test]
    fn built_database_validates() {
        let (db, _) = SyntheticDbSpec {
            modules: 3,
            depth: 3,
            correspondence_prob: 0.8,
            version_prob: 0.5,
            ..SyntheticDbSpec::default()
        }
        .build();
        let violations = validate(&db);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn fanout_controls_density() {
        let narrow = SyntheticDbSpec {
            fanout: (2, 2),
            depth: 2,
            modules: 1,
            representations: vec!["layout".into()],
            version_prob: 0.0,
            correspondence_prob: 0.0,
            ..SyntheticDbSpec::default()
        };
        let (db, stats) = narrow.build();
        // 1 + 2 + 4 nodes, 6 edges.
        assert_eq!(stats.objects, 7);
        assert_eq!(stats.configuration_edges, 6);
        let roots: Vec<_> = db
            .objects()
            .filter(|o| db.graph().composites(o.id).is_empty())
            .collect();
        assert_eq!(roots.len(), 1);
        assert_eq!(db.graph().downward_fanout(roots[0].id), 2);
    }

    #[test]
    fn wide_fanout_produces_high_density() {
        let wide = SyntheticDbSpec {
            fanout: (10, 12),
            depth: 1,
            modules: 1,
            representations: vec!["layout".into()],
            version_prob: 0.0,
            correspondence_prob: 0.0,
            ..SyntheticDbSpec::default()
        };
        let (db, _) = wide.build();
        let root = db
            .objects()
            .find(|o| db.graph().composites(o.id).is_empty())
            .unwrap();
        assert!(db.graph().downward_fanout(root.id) >= 10);
    }
}
