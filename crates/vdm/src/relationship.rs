//! Structural relationships as first-class model elements.
//!
//! The Version Data Model supports three structural relationships —
//! configuration, version history, and correspondence — plus
//! instance-to-instance inheritance links. Each relationship is directed
//! for storage purposes but navigable both ways; [`Direction`] names the
//! two ends.

use std::fmt;

/// Kind of a structural relationship between two instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RelKind {
    /// Composite → component (`ALU[4].layout` is composed of
    /// `CARRY-PROPAGATE[2].layout`).
    Configuration,
    /// Ancestor → descendant version (`ALU[3].layout` → `ALU[4].layout`).
    VersionHistory,
    /// Equivalence across representations (`ALU[2].layout` corresponds to
    /// `ALU[3].netlist`). Symmetric; stored once, navigable both ways.
    Correspondence,
    /// Instance-to-instance inheritance: provider → inheritor. Created when
    /// an inherited attribute is implemented *by reference* rather than by
    /// copy.
    Inheritance,
}

impl RelKind {
    /// All four kinds, in a fixed order (useful for per-kind tallies).
    pub const ALL: [RelKind; 4] = [
        RelKind::Configuration,
        RelKind::VersionHistory,
        RelKind::Correspondence,
        RelKind::Inheritance,
    ];

    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        match self {
            RelKind::Configuration => 0,
            RelKind::VersionHistory => 1,
            RelKind::Correspondence => 2,
            RelKind::Inheritance => 3,
        }
    }

    /// Whether the relationship is symmetric (no distinct forward /
    /// backward meaning).
    pub fn is_symmetric(self) -> bool {
        matches!(self, RelKind::Correspondence)
    }
}

impl fmt::Display for RelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RelKind::Configuration => "configuration",
            RelKind::VersionHistory => "version-history",
            RelKind::Correspondence => "correspondence",
            RelKind::Inheritance => "inheritance",
        };
        f.write_str(s)
    }
}

/// Which end of a directed relationship to navigate toward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follow stored edges forward: composite→components,
    /// ancestor→descendants, provider→inheritors.
    Forward,
    /// Follow stored edges backward: component→composites,
    /// descendant→ancestors, inheritor→providers.
    Backward,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

/// Per-relationship traversal frequencies — the knowledge the clustering
/// and buffering algorithms exploit. Units are arbitrary relative weights;
/// instances inherit them from their type at creation and user hints can
/// override them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelFrequencies {
    /// Composite → component traversals (walking a configuration down).
    pub config_down: f64,
    /// Component → composite traversals (walking a configuration up).
    pub config_up: f64,
    /// Descendant → ancestor traversals (most inheritance references run
    /// along version history, §2.1c).
    pub version_up: f64,
    /// Ancestor → descendant traversals.
    pub version_down: f64,
    /// Correspondence traversals (multi-representation browsing).
    pub correspondence: f64,
    /// Inheritance-link dereferences (reading an attribute implemented by
    /// reference).
    pub inheritance: f64,
}

impl RelFrequencies {
    /// A neutral profile: everything equally likely.
    pub const UNIFORM: RelFrequencies = RelFrequencies {
        config_down: 1.0,
        config_up: 1.0,
        version_up: 1.0,
        version_down: 1.0,
        correspondence: 1.0,
        inheritance: 1.0,
    };

    /// Weight for traversing `kind` in `dir`.
    pub fn weight(&self, kind: RelKind, dir: Direction) -> f64 {
        match (kind, dir) {
            (RelKind::Configuration, Direction::Forward) => self.config_down,
            (RelKind::Configuration, Direction::Backward) => self.config_up,
            (RelKind::VersionHistory, Direction::Forward) => self.version_down,
            (RelKind::VersionHistory, Direction::Backward) => self.version_up,
            (RelKind::Correspondence, _) => self.correspondence,
            (RelKind::Inheritance, _) => self.inheritance,
        }
    }

    /// The relationship kind with the largest total weight (both
    /// directions) — the initial-placement driver of §2.1.
    pub fn dominant_kind(&self) -> RelKind {
        let totals = [
            (RelKind::Configuration, self.config_down + self.config_up),
            (RelKind::VersionHistory, self.version_down + self.version_up),
            (RelKind::Correspondence, 2.0 * self.correspondence),
            (RelKind::Inheritance, 2.0 * self.inheritance),
        ];
        totals
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("weights are finite"))
            .map(|(k, _)| k)
            .expect("non-empty")
    }

    /// Scale every weight by `factor` (used when merging user hints).
    pub fn scaled(&self, factor: f64) -> RelFrequencies {
        RelFrequencies {
            config_down: self.config_down * factor,
            config_up: self.config_up * factor,
            version_up: self.version_up * factor,
            version_down: self.version_down * factor,
            correspondence: self.correspondence * factor,
            inheritance: self.inheritance * factor,
        }
    }
}

impl Default for RelFrequencies {
    fn default() -> Self {
        RelFrequencies::UNIFORM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indexes_are_dense_and_distinct() {
        let mut seen = [false; 4];
        for k in RelKind::ALL {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn only_correspondence_is_symmetric() {
        assert!(RelKind::Correspondence.is_symmetric());
        assert!(!RelKind::Configuration.is_symmetric());
        assert!(!RelKind::VersionHistory.is_symmetric());
        assert!(!RelKind::Inheritance.is_symmetric());
    }

    #[test]
    fn weight_lookup_respects_direction() {
        let f = RelFrequencies {
            config_down: 5.0,
            config_up: 1.0,
            ..RelFrequencies::UNIFORM
        };
        assert_eq!(f.weight(RelKind::Configuration, Direction::Forward), 5.0);
        assert_eq!(f.weight(RelKind::Configuration, Direction::Backward), 1.0);
        assert_eq!(f.weight(RelKind::Correspondence, Direction::Forward), 1.0);
    }

    #[test]
    fn dominant_kind_picks_heaviest() {
        let f = RelFrequencies {
            version_up: 10.0,
            ..RelFrequencies::UNIFORM
        };
        assert_eq!(f.dominant_kind(), RelKind::VersionHistory);
    }

    #[test]
    fn direction_reverse_is_involution() {
        assert_eq!(Direction::Forward.reverse(), Direction::Backward);
        assert_eq!(Direction::Forward.reverse().reverse(), Direction::Forward);
    }

    #[test]
    fn scaled_multiplies_everything() {
        let f = RelFrequencies::UNIFORM.scaled(3.0);
        assert_eq!(f.config_down, 3.0);
        assert_eq!(f.inheritance, 3.0);
    }
}
