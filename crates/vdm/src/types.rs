//! The type lattice and type-level inheritance.
//!
//! Types form a DAG via supertype links. Attribute and operation
//! definitions propagate down the lattice; a subtype sees the union of its
//! own and all ancestors' definitions, with the most specific definition of
//! a name winning. Instances inherit per-relationship traversal
//! frequencies from their type at creation time (§2.1: "The interobject
//! access frequencies are inherited from the type at object creation
//! time").

use crate::id::TypeId;
use crate::relationship::RelFrequencies;
use std::collections::HashMap;
use std::fmt;

/// Definition of an attribute on a type.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrDef {
    /// Attribute name (unique within a type; shadows supertypes).
    pub name: String,
    /// Storage footprint of the attribute value in bytes.
    pub size_bytes: u32,
    /// Relative how-often-read weight (drives copy-vs-reference costing).
    pub read_weight: f64,
    /// Relative how-often-updated weight.
    pub update_weight: f64,
    /// Whether descendant versions may inherit this attribute
    /// instance-to-instance.
    pub inheritable: bool,
}

impl AttrDef {
    /// Convenience constructor with neutral weights.
    pub fn new(name: impl Into<String>, size_bytes: u32) -> Self {
        AttrDef {
            name: name.into(),
            size_bytes,
            read_weight: 1.0,
            update_weight: 1.0,
            inheritable: true,
        }
    }
}

/// Definition of an operation (behaviour) on a type. Operations carry no
/// body here — the simulation only needs dispatch/lookup semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpDef {
    /// Operation name (unique within a type; overrides supertypes).
    pub name: String,
}

/// A node in the type lattice.
#[derive(Debug, Clone)]
pub struct TypeDef {
    /// This type's id.
    pub id: TypeId,
    /// Human-readable name, e.g. `layout` or `cell`.
    pub name: String,
    /// Direct supertypes (multiple inheritance allowed).
    pub supertypes: Vec<TypeId>,
    /// Attributes defined directly on this type.
    pub attributes: Vec<AttrDef>,
    /// Operations defined directly on this type.
    pub operations: Vec<OpDef>,
    /// Default traversal frequencies instances of this type start with.
    pub frequencies: RelFrequencies,
}

/// Errors raised by lattice construction and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A named supertype id does not exist.
    UnknownSupertype(TypeId),
    /// Adding the type would create a supertype cycle.
    CycleDetected(String),
    /// A type name was defined twice.
    DuplicateName(String),
    /// Lookup of an unknown type id.
    UnknownType(TypeId),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnknownSupertype(t) => write!(f, "unknown supertype {t}"),
            TypeError::CycleDetected(n) => write!(f, "type {n:?} would create a supertype cycle"),
            TypeError::DuplicateName(n) => write!(f, "type name {n:?} already defined"),
            TypeError::UnknownType(t) => write!(f, "unknown type {t}"),
        }
    }
}

impl std::error::Error for TypeError {}

/// The lattice of all types, supporting resolution of inherited
/// definitions.
#[derive(Debug, Clone, Default)]
pub struct TypeLattice {
    types: Vec<TypeDef>,
    by_name: HashMap<String, TypeId>,
}

impl TypeLattice {
    /// Empty lattice.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the lattice is empty.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Define a new type. Supertypes must already exist (so cycles are
    /// impossible by construction, but we still validate ids).
    pub fn define(
        &mut self,
        name: impl Into<String>,
        supertypes: Vec<TypeId>,
        attributes: Vec<AttrDef>,
        operations: Vec<OpDef>,
        frequencies: RelFrequencies,
    ) -> Result<TypeId, TypeError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(TypeError::DuplicateName(name));
        }
        for &s in &supertypes {
            if s.index() >= self.types.len() {
                return Err(TypeError::UnknownSupertype(s));
            }
        }
        let id = TypeId(self.types.len() as u32);
        self.types.push(TypeDef {
            id,
            name: name.clone(),
            supertypes,
            attributes,
            operations,
            frequencies,
        });
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Shorthand: define a root type with only a name and frequencies.
    pub fn define_simple(
        &mut self,
        name: impl Into<String>,
        frequencies: RelFrequencies,
    ) -> Result<TypeId, TypeError> {
        self.define(name, Vec::new(), Vec::new(), Vec::new(), frequencies)
    }

    /// Look up a type definition.
    pub fn get(&self, id: TypeId) -> Result<&TypeDef, TypeError> {
        self.types.get(id.index()).ok_or(TypeError::UnknownType(id))
    }

    /// Look up a type id by name.
    pub fn id_of(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(name).copied()
    }

    /// All supertypes of `id`, most specific first (BFS order), excluding
    /// `id` itself. Deduplicated for diamond lattices.
    pub fn ancestors(&self, id: TypeId) -> Result<Vec<TypeId>, TypeError> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.types.len()];
        let mut frontier = vec![id];
        while let Some(cur) = frontier.pop() {
            for &s in &self.get(cur)?.supertypes {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    out.push(s);
                    frontier.push(s);
                }
            }
        }
        Ok(out)
    }

    /// Whether `sub` is `sup` or inherits (transitively) from it.
    pub fn is_subtype(&self, sub: TypeId, sup: TypeId) -> Result<bool, TypeError> {
        if sub == sup {
            return Ok(true);
        }
        Ok(self.ancestors(sub)?.contains(&sup))
    }

    /// The full attribute set visible on `id`: its own attributes plus all
    /// inherited ones, with subtype definitions shadowing supertype
    /// definitions of the same name.
    pub fn resolve_attributes(&self, id: TypeId) -> Result<Vec<AttrDef>, TypeError> {
        let mut out: Vec<AttrDef> = Vec::new();
        let mut have: HashMap<&str, ()> = HashMap::new();
        let own = self.get(id)?;
        for a in &own.attributes {
            if have.insert(a.name.as_str(), ()).is_none() {
                out.push(a.clone());
            }
        }
        for anc in self.ancestors(id)? {
            for a in &self.get(anc)?.attributes {
                if !out.iter().any(|existing| existing.name == a.name) {
                    out.push(a.clone());
                }
            }
        }
        Ok(out)
    }

    /// The full operation set visible on `id`, subtype definitions winning.
    pub fn resolve_operations(&self, id: TypeId) -> Result<Vec<OpDef>, TypeError> {
        let mut out: Vec<OpDef> = self.get(id)?.operations.clone();
        for anc in self.ancestors(id)? {
            for op in &self.get(anc)?.operations {
                if !out.iter().any(|existing| existing.name == op.name) {
                    out.push(op.clone());
                }
            }
        }
        Ok(out)
    }

    /// Effective traversal frequencies for instances of `id`: the type's
    /// own profile. (Subtypes declare a complete profile; lattice merging
    /// of partial profiles is not needed by the model.)
    pub fn frequencies(&self, id: TypeId) -> Result<RelFrequencies, TypeError> {
        Ok(self.get(id)?.frequencies)
    }

    /// Iterate all type definitions.
    pub fn iter(&self) -> impl Iterator<Item = &TypeDef> {
        self.types.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice() -> (TypeLattice, TypeId, TypeId, TypeId) {
        let mut l = TypeLattice::new();
        let base = l
            .define(
                "design-object",
                vec![],
                vec![AttrDef::new("owner", 16), AttrDef::new("timestamp", 8)],
                vec![OpDef {
                    name: "describe".into(),
                }],
                RelFrequencies::UNIFORM,
            )
            .unwrap();
        let cell = l
            .define(
                "cell",
                vec![base],
                vec![AttrDef::new("bbox", 32)],
                vec![],
                RelFrequencies {
                    config_down: 8.0,
                    ..RelFrequencies::UNIFORM
                },
            )
            .unwrap();
        let macro_cell = l
            .define(
                "macro-cell",
                vec![cell],
                vec![AttrDef::new("owner", 64)], // shadows base's owner
                vec![OpDef {
                    name: "route".into(),
                }],
                RelFrequencies {
                    config_down: 12.0,
                    ..RelFrequencies::UNIFORM
                },
            )
            .unwrap();
        (l, base, cell, macro_cell)
    }

    #[test]
    fn ancestors_are_transitive() {
        let (l, base, cell, mc) = lattice();
        assert_eq!(l.ancestors(mc).unwrap(), vec![cell, base]);
        assert!(l.is_subtype(mc, base).unwrap());
        assert!(!l.is_subtype(base, mc).unwrap());
        assert!(l.is_subtype(cell, cell).unwrap());
    }

    #[test]
    fn attribute_resolution_shadows() {
        let (l, _, _, mc) = lattice();
        let attrs = l.resolve_attributes(mc).unwrap();
        let names: Vec<&str> = attrs.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, ["owner", "bbox", "timestamp"]);
        // The subtype's 64-byte owner wins over the base's 16-byte one.
        assert_eq!(attrs[0].size_bytes, 64);
    }

    #[test]
    fn operation_resolution_unions() {
        let (l, _, _, mc) = lattice();
        let ops = l.resolve_operations(mc).unwrap();
        let names: Vec<&str> = ops.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, ["route", "describe"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut l = TypeLattice::new();
        l.define_simple("x", RelFrequencies::UNIFORM).unwrap();
        assert_eq!(
            l.define_simple("x", RelFrequencies::UNIFORM),
            Err(TypeError::DuplicateName("x".into()))
        );
    }

    #[test]
    fn unknown_supertype_rejected() {
        let mut l = TypeLattice::new();
        let err = l
            .define(
                "y",
                vec![TypeId(9)],
                vec![],
                vec![],
                RelFrequencies::UNIFORM,
            )
            .unwrap_err();
        assert_eq!(err, TypeError::UnknownSupertype(TypeId(9)));
    }

    #[test]
    fn diamond_lattice_dedupes() {
        let mut l = TypeLattice::new();
        let root = l.define_simple("root", RelFrequencies::UNIFORM).unwrap();
        let a = l
            .define("a", vec![root], vec![], vec![], RelFrequencies::UNIFORM)
            .unwrap();
        let b = l
            .define("b", vec![root], vec![], vec![], RelFrequencies::UNIFORM)
            .unwrap();
        let leaf = l
            .define("leaf", vec![a, b], vec![], vec![], RelFrequencies::UNIFORM)
            .unwrap();
        let ancs = l.ancestors(leaf).unwrap();
        assert_eq!(ancs.iter().filter(|&&t| t == root).count(), 1);
        assert_eq!(ancs.len(), 3);
    }

    #[test]
    fn lookup_by_name() {
        let (l, base, _, _) = lattice();
        assert_eq!(l.id_of("design-object"), Some(base));
        assert_eq!(l.id_of("nonexistent"), None);
        assert_eq!(l.len(), 3);
    }
}
