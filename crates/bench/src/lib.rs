//! # semcluster-bench
//!
//! Experiment drivers that regenerate every table and figure of the
//! paper's evaluation, plus Criterion micro-benchmarks. One binary per
//! exhibit (`fig3_2` … `fig6_2`, `table4_1`, `table5_1`, ablations,
//! `repro_all`); the shared sweep logic lives here so binaries, the
//! all-in-one runner and the benches stay in sync.
//!
//! Every sweep runs on the deterministic parallel executor
//! ([`semcluster::SweepRunner`]): independent configurations fan out
//! across `--jobs N` worker threads and are assembled in submission
//! order, so stdout is byte-identical at any thread count. Only the
//! sweep summary (wall-clock, speedup) goes to stderr.
//!
//! Environment knobs (all optional):
//!
//! * `SEMCLUSTER_REPS` — replications per configuration (default 3).
//! * `SEMCLUSTER_FAST` — set to any value for a quick smoke pass
//!   (smaller database, fewer transactions, 1 replication).
//! * `SEMCLUSTER_JOBS` (or `--jobs N`) — worker threads per sweep
//!   (default: the host's available parallelism).
//! * `SEMCLUSTER_VERBOSE` (or `--verbose`) — print the response-time
//!   breakdown (cpu / reads / flushes / search / log / lock wait) for
//!   every configuration, in submission order.

#![warn(missing_docs)]

pub mod experiments;

use semcluster::{RunReport, SimConfig};

/// Sweep options shared by all figure binaries.
#[derive(Debug, Clone, Copy)]
pub struct FigureOpts {
    /// Replications per configuration.
    pub reps: u32,
    /// Database size override in bytes.
    pub database_bytes: u64,
    /// Measured transactions per run.
    pub measured_txns: u64,
    /// Warmup transactions per run.
    pub warmup_txns: u64,
    /// Base seed.
    pub seed: u64,
    /// Print the per-component response breakdown of every run.
    pub verbose: bool,
    /// Sweep worker threads (0 = available parallelism).
    pub jobs: usize,
}

impl FigureOpts {
    /// Resolve options from the environment (and `--verbose` /
    /// `--jobs N` flags).
    pub fn from_env() -> Self {
        let fast = std::env::var_os("SEMCLUSTER_FAST").is_some();
        let verbose = std::env::var_os("SEMCLUSTER_VERBOSE").is_some()
            || std::env::args().any(|a| a == "--verbose");
        let reps = std::env::var("SEMCLUSTER_REPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if fast { 1 } else { 3 });
        let jobs = jobs_from_env();
        if fast {
            FigureOpts {
                reps,
                database_bytes: 4 * 1024 * 1024,
                measured_txns: 500,
                warmup_txns: 150,
                seed: 42,
                verbose,
                jobs,
            }
        } else {
            FigureOpts {
                reps,
                database_bytes: 32 * 1024 * 1024,
                measured_txns: 2000,
                warmup_txns: 400,
                seed: 42,
                verbose,
                jobs,
            }
        }
    }

    /// Apply the options to a configuration.
    pub fn apply(&self, mut cfg: SimConfig) -> SimConfig {
        cfg.database_bytes = self.database_bytes;
        cfg.measured_txns = self.measured_txns;
        cfg.warmup_txns = self.warmup_txns;
        cfg.seed = self.seed;
        // Keep the paper's ~1 % buffer:database ratio under FAST scaling.
        if self.database_bytes < 16 * 1024 * 1024 {
            cfg.buffer_pages = 32;
        }
        cfg
    }
}

/// Worker-thread count from `--jobs N` (argv) or `SEMCLUSTER_JOBS` (env);
/// 0 (= available parallelism) when neither is given.
pub fn jobs_from_env() -> usize {
    let mut argv = std::env::args();
    while let Some(arg) = argv.next() {
        if arg == "--jobs" {
            if let Some(n) = argv.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        } else if let Some(n) = arg.strip_prefix("--jobs=").and_then(|v| v.parse().ok()) {
            return n;
        }
    }
    std::env::var("SEMCLUSTER_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Print the standard exhibit banner.
pub fn banner(exhibit: &str, caption: &str) {
    println!("================================================================");
    println!("{exhibit} — {caption}");
    println!("================================================================");
}

/// Print one run's response-time attribution (used under `--verbose`).
pub fn print_breakdown(report: &RunReport) {
    let b = report.breakdown;
    println!(
        "  [{}] response {:.1} ms = cpu {:.1} + read {:.1} + flush {:.1} \
         + search {:.1} + log {:.1} + lock {:.1}",
        report.config_label,
        b.response_total_s() * 1e3,
        b.cpu_s * 1e3,
        b.data_read_s * 1e3,
        b.dirty_flush_s * 1e3,
        b.cluster_search_s * 1e3,
        b.log_s * 1e3,
        b.lock_wait_s * 1e3,
    );
}
