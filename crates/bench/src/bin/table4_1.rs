//! Table 4.1 — the simulation parameters, printed from the live default
//! configuration (scaled) and the paper-scale configuration.

use semcluster::SimConfig;
use semcluster_analysis::Table;
use semcluster_bench::banner;

fn main() {
    banner("Table 4.1", "simulation parameters");
    let scaled = SimConfig::default();
    let paper = SimConfig::paper_scale();
    let mut t = Table::new(vec!["label", "parameter", "paper value", "scaled default"]);
    t.row(vec![
        "A".into(),
        "Database size".into(),
        format!("{} MB", paper.database_bytes / (1024 * 1024)),
        format!("{} MB", scaled.database_bytes / (1024 * 1024)),
    ]);
    t.row(vec![
        "B".into(),
        "Page size".into(),
        format!("{} B", paper.page_bytes),
        format!("{} B", scaled.page_bytes),
    ]);
    t.row(vec![
        "C".into(),
        "Number of users".into(),
        paper.users.to_string(),
        scaled.users.to_string(),
    ]);
    t.row(vec![
        "D".into(),
        "Number of disks".into(),
        paper.disks.to_string(),
        scaled.disks.to_string(),
    ]);
    t.row(vec![
        "E".into(),
        "Think time".into(),
        format!("{:.0} s", paper.think_time.as_secs_f64()),
        format!("{:.0} s", scaled.think_time.as_secs_f64()),
    ]);
    t.row(vec![
        "L".into(),
        "Buffer pool size".into(),
        format!("{} pages", paper.buffer_pages),
        format!("{} pages", scaled.buffer_pages),
    ]);
    t.print();
    println!("\ncontrol parameters (operating levels):");
    let mut c = Table::new(vec!["label", "parameter", "levels"]);
    c.row(vec!["F", "Structure density", "low-3, med-5, high-10"]);
    c.row(vec!["G", "Read/write ratio", "5, 10, 100"]);
    c.row(vec![
        "H",
        "Clustering policy",
        "No_Cluster, Cluster_within_Buffer, 2_IO_limit, 10_IO_limit, No_limit",
    ]);
    c.row(vec![
        "I",
        "Page splitting",
        "No_Splitting, Linear_Split, NP_Split",
    ]);
    c.row(vec!["J", "User hints", "No_hint, User_hint"]);
    c.row(vec![
        "K",
        "Buffer replacement",
        "LRU, Context-sensitive, Random",
    ]);
    c.row(vec![
        "L",
        "Buffer pool size",
        "100, 1000, 10000 (paper scale)",
    ]);
    c.row(vec![
        "M",
        "Prefetch policy",
        "No_prefetch, Prefetch_within_buffer_pool, Prefetch_within_Database",
    ]);
    c.print();
}
