//! Figure 5.9 — page-splitting effects: No_Splitting vs Linear_Split vs
//! NP_Split across the six workload corners, clustering without limit.

use semcluster_bench::experiments::{corner_workloads, split_effect};
use semcluster_bench::{banner, FigureOpts};

fn main() {
    banner(
        "Figure 5.9",
        "page-splitting effects — mean response time (s)",
    );
    let opts = FigureOpts::from_env();
    split_effect(&opts, &corner_workloads()).print("response (s)");
    println!("\npaper: differences are small; Linear_Split best at high density + high rw,");
    println!("No_Splitting best at low rw.");
}
