//! Ablation: magnitude of the context-sensitive relationship boost
//! (DESIGN.md §5). Too small degenerates to LRU; too large pins stale
//! relationship neighbourhoods.

use semcluster::{buffering_study_base, SweepJob};
use semcluster_analysis::Table;
use semcluster_bench::experiments::run_jobs;
use semcluster_bench::{banner, FigureOpts};
use semcluster_buffer::{PrefetchScope, ReplacementPolicy};
use semcluster_workload::{StructureDensity, WorkloadSpec};

fn main() {
    banner("Ablation", "context-sensitive boost magnitude (hi10-100)");
    let opts = FigureOpts::from_env();
    let boosts = [1u64, 8, 32, 128, 512, 4096];
    let jobs = boosts
        .iter()
        .map(|&boost| {
            let mut cfg = opts.apply(buffering_study_base());
            cfg.workload = WorkloadSpec::new(StructureDensity::High10, 100.0);
            cfg.replacement = ReplacementPolicy::ContextSensitive;
            cfg.prefetch = PrefetchScope::None;
            cfg.context_boost_ticks = Some(boost);
            SweepJob::new(format!("boost {boost}"), cfg, opts.reps)
        })
        .collect();
    let results = run_jobs(&opts, jobs);
    let mut table = Table::new(vec!["boost (ticks)", "response (s)", "hit ratio"]);
    for (boost, r) in boosts.iter().zip(&results) {
        table.row(vec![
            boost.to_string(),
            format!("{:.3}±{:.3}", r.response.mean, r.response.ci95),
            format!("{:.3}", r.hit_ratio.mean),
        ]);
    }
    table.print();
}
