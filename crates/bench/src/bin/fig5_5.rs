//! Figure 5.5 — clustering effect on transaction-logging I/Os (rw = 5,
//! density sweep): before-image coalescing makes clustering cheaper to
//! log.

use semcluster_bench::experiments::log_io_effect;
use semcluster_bench::{banner, FigureOpts};

fn main() {
    banner(
        "Figure 5.5",
        "log I/Os per write transaction, No_Cluster vs No_limit (rw=5)",
    );
    let opts = FigureOpts::from_env();
    let sweep = log_io_effect(&opts);
    sweep.print("log I/Os per write txn");
    println!("\npaper: clustering reduces logging I/O at every density.");
}
