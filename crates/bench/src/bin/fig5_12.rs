//! Figure 5.12 — prefetching effect under the Context-sensitive buffer
//! replacement policy.

use semcluster_bench::experiments::{corner_workloads, prefetch_effect};
use semcluster_bench::{banner, FigureOpts};
use semcluster_buffer::ReplacementPolicy;

fn main() {
    banner(
        "Figure 5.12",
        "prefetching effect under Context-sensitive replacement — response (s)",
    );
    let opts = FigureOpts::from_env();
    prefetch_effect(
        &opts,
        ReplacementPolicy::ContextSensitive,
        &corner_workloads(),
    )
    .print("response (s)");
}
