//! Figure 3.4 — OCT tool structure-density distribution (shares of
//! low/medium/high downward fan-out), recovered from synthetic traces.

use semcluster_analysis::Table;
use semcluster_bench::banner;
use semcluster_sim::SimRng;
use semcluster_workload::{analyze, generate_trace, oct_tools};

fn main() {
    banner("Figure 3.4", "OCT tool structure-density distribution");
    let mut rng = SimRng::seed_from_u64(34);
    let tools = oct_tools();
    let trace = generate_trace(&tools, 40, &mut rng);
    let stats = analyze(&trace);
    let mut table = Table::new(vec!["tool", "low (0-3)", "med (4-10)", "high (>10)"]);
    for t in &tools {
        let s = stats.iter().find(|s| s.tool == t.name).expect("analysed");
        table.row(vec![
            t.name.to_string(),
            format!("{:.2}", s.density_shares[0]),
            format!("{:.2}", s.density_shares[1]),
            format!("{:.2}", s.density_shares[2]),
        ]);
    }
    table.print();
    println!("\npaper: all tools except wolfe (and VEM) are dominated by low density.");
}
