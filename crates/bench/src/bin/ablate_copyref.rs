//! Ablation: the copy-vs-reference cost model for inherited attributes —
//! how the traversal-cost weight shifts the decision mix and the
//! resulting inheritance-arc count the clusterer can exploit.

use semcluster_analysis::Table;
use semcluster_bench::banner;
use semcluster_vdm::{derive_version, CopyVsRefModel, Database, ObjectId, SyntheticDbSpec};

fn main() {
    banner("Ablation", "copy-vs-reference traversal weight");
    let mut table = Table::new(vec![
        "traversal weight",
        "copied attrs",
        "by-reference attrs",
        "inheritance edges",
        "mean derived size (B)",
    ]);
    for weight in [0.1, 0.5, 1.0, 2.0, 8.0, 32.0] {
        let (mut db, _) = SyntheticDbSpec {
            modules: 8,
            version_prob: 0.0,
            seed: 99,
            ..SyntheticDbSpec::default()
        }
        .build();
        let model = CopyVsRefModel {
            traversal_per_read: weight,
            ..CopyVsRefModel::default()
        };
        let parents: Vec<ObjectId> = db.objects().map(|o| o.id).step_by(7).take(60).collect();
        let mut copied = 0usize;
        let mut referenced = 0usize;
        let mut bytes = 0u64;
        let mut derived_count = 0u64;
        for p in parents {
            let d = derive_version(&mut db, p, &model).unwrap();
            copied += d.copied.len();
            referenced += d.referenced.len();
            bytes += u64::from(size_of_object(&db, d.id));
            derived_count += 1;
        }
        let edges = db
            .graph()
            .edges()
            .filter(|(k, _, _)| *k == semcluster_vdm::RelKind::Inheritance)
            .count();
        table.row(vec![
            format!("{weight}"),
            copied.to_string(),
            referenced.to_string(),
            edges.to_string(),
            format!("{:.0}", bytes as f64 / derived_count as f64),
        ]);
    }
    table.print();
    println!("\nhigher traversal cost pushes the model toward copying: fewer");
    println!("inheritance arcs for the clusterer, larger derived objects.");
}

fn size_of_object(db: &Database, id: ObjectId) -> u32 {
    db.get(id).map(|o| o.size_bytes()).unwrap_or(0)
}
