//! Figure 6.2 — interaction analysis: classify selected control-parameter
//! pairs as no / minor / major interactions from the factorial responses.

use semcluster_analysis::Table;
use semcluster_bench::experiments::{corners_from, factorial_design, factorial_responses_cached};
use semcluster_bench::{banner, FigureOpts};

fn main() {
    banner(
        "Figure 6.2",
        "interaction analysis of control-parameter pairs",
    );
    let opts = FigureOpts::from_env();
    let design = factorial_design();
    eprintln!(
        "running {} configurations (cached across 6.1/6.2)…",
        design.runs()
    );
    let responses = factorial_responses_cached(&opts);
    // The pairs §6 singles out.
    let pairs = [
        (0usize, 5usize), // density × buffering (replacement)
        (1, 2),           // rw × clustering
        (1, 3),           // rw × split
        (0, 2),           // density × clustering
        (0, 3),           // density × split
        (2, 3),           // clustering × split
        (2, 5),           // clustering × buffering
        (0, 1),           // density × rw
        (1, 5),           // rw × buffering
    ];
    let names = design.factors().to_vec();
    let mut table = Table::new(vec!["pair", "ll", "lh", "hl", "hh", "class"]);
    for (i, j) in pairs {
        let c = corners_from(&design, &responses, i, j);
        table.row(vec![
            format!("{}×{}", names[i], names[j]),
            format!("{:.3}", c.ll),
            format!("{:.3}", c.lh),
            format!("{:.3}", c.hl),
            format!("{:.3}", c.hh),
            c.classify(0.08).to_string(),
        ]);
    }
    table.print();
    println!("\npaper: no major (crossing) interactions; minor ones around density/rw");
    println!("with clustering and splitting; none between buffering and clustering.");
}
