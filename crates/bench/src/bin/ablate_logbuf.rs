//! Ablation: circular log-buffer size vs physical log I/O (the §4
//! "circular in-memory log buffer" design point).

use semcluster::{clustering_study_base, run_replicated};
use semcluster_analysis::Table;
use semcluster_bench::{banner, FigureOpts};
use semcluster_workload::{StructureDensity, WorkloadSpec};

fn main() {
    banner("Ablation", "circular log-buffer size (med5-5)");
    let opts = FigureOpts::from_env();
    let mut table = Table::new(vec![
        "log buffer",
        "log I/Os",
        "buffer flushes",
        "response (s)",
    ]);
    for kb in [1u32, 4, 16, 64, 256] {
        let mut cfg = opts.apply(clustering_study_base());
        cfg.workload = WorkloadSpec::new(StructureDensity::Med5, 5.0);
        cfg.log.buffer_bytes = kb * 1024;
        let r = run_replicated(&cfg, opts.reps);
        let flushes: f64 = r
            .reports
            .iter()
            .map(|rep| rep.log.buffer_flushes as f64)
            .sum::<f64>()
            / r.reports.len() as f64;
        table.row(vec![
            format!("{kb} KB"),
            format!("{:.0}", r.log_ios.mean),
            format!("{flushes:.0}"),
            format!("{:.3}", r.response.mean),
        ]);
    }
    table.print();
}
