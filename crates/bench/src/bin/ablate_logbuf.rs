//! Ablation: circular log-buffer size vs physical log I/O (the §4
//! "circular in-memory log buffer" design point).

use semcluster::{clustering_study_base, SweepJob};
use semcluster_analysis::Table;
use semcluster_bench::experiments::run_jobs;
use semcluster_bench::{banner, FigureOpts};
use semcluster_workload::{StructureDensity, WorkloadSpec};

fn main() {
    banner("Ablation", "circular log-buffer size (med5-5)");
    let opts = FigureOpts::from_env();
    let sizes = [1u32, 4, 16, 64, 256];
    let jobs = sizes
        .iter()
        .map(|&kb| {
            let mut cfg = opts.apply(clustering_study_base());
            cfg.workload = WorkloadSpec::new(StructureDensity::Med5, 5.0);
            cfg.log.buffer_bytes = kb * 1024;
            SweepJob::new(format!("log buffer {kb} KB"), cfg, opts.reps)
        })
        .collect();
    let results = run_jobs(&opts, jobs);
    let mut table = Table::new(vec![
        "log buffer",
        "log I/Os",
        "buffer flushes",
        "response (s)",
    ]);
    for (kb, r) in sizes.iter().zip(&results) {
        let flushes: f64 = r
            .reports
            .iter()
            .map(|rep| rep.log.buffer_flushes as f64)
            .sum::<f64>()
            / r.reports.len() as f64;
        table.row(vec![
            format!("{kb} KB"),
            format!("{:.0}", r.log_ios.mean),
            format!("{flushes:.0}"),
            format!("{:.3}", r.response.mean),
        ]);
    }
    table.print();
}
