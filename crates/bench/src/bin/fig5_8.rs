//! Figure 5.8 — clustering effect under high structure density, sweeping
//! the read/write ratio.

use semcluster_bench::experiments::{clustering_effect, rw_workloads};
use semcluster_bench::{banner, FigureOpts};
use semcluster_workload::StructureDensity;

fn main() {
    banner(
        "Figure 5.8",
        "clustering effect at high density — mean response time (s)",
    );
    let opts = FigureOpts::from_env();
    clustering_effect(&opts, &rw_workloads(StructureDensity::High10)).print("response (s)");
}
