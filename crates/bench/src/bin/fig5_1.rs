//! Figure 5.1 — clustering-effects analysis: five clustering policies
//! across the six workload corners (densities × rw 5/100), under LRU,
//! 1000-buffer-equivalent, no prefetch.

use semcluster_bench::experiments::{clustering_effect, corner_workloads};
use semcluster_bench::{banner, FigureOpts};

fn main() {
    banner(
        "Figure 5.1",
        "clustering effects (LRU, no prefetch) — mean response time (s)",
    );
    let opts = FigureOpts::from_env();
    let sweep = clustering_effect(&opts, &corner_workloads());
    sweep.print("response (s)");
    if let (Some(none), Some(best)) = (
        sweep.get("hi10-100", "No_Cluster"),
        sweep.get("hi10-100", "No_limit"),
    ) {
        println!(
            "\nhi10-100: No_Cluster / No_limit = {:.2}× (paper: ≈3× — a 200% improvement)",
            none.mean / best.mean
        );
    }
}
