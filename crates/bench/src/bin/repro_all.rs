//! Regenerate every exhibit in sequence (Figures 3.2–6.2, Tables 4.1 and
//! 5.1). Honours `SEMCLUSTER_FAST` / `SEMCLUSTER_REPS`. Each exhibit is
//! also available as its own binary (`cargo run --release -p
//! semcluster-bench --bin fig5_1` etc.).

use std::process::Command;

fn main() {
    let exhibits = [
        "table4_1", "fig3_2", "fig3_3", "fig3_4", "fig5_1", "table5_1", "fig5_2", "fig5_3",
        "fig5_4", "fig5_5", "fig5_6", "fig5_7", "fig5_8", "fig5_9", "fig5_10", "fig5_11",
        "fig5_12", "fig5_13", "fig5_14", "fig6_1", "fig6_2",
    ];
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    // `repro_all --verbose` propagates to the child exhibits via the
    // environment, so every configuration prints its response breakdown.
    let verbose = std::env::args().any(|a| a == "--verbose");
    for exhibit in exhibits {
        let path = dir.join(exhibit);
        let mut cmd = Command::new(&path);
        if verbose {
            cmd.env("SEMCLUSTER_VERBOSE", "1");
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exhibit}: {e}"));
        assert!(status.success(), "{exhibit} failed");
        println!();
    }
    println!("all exhibits regenerated.");
}
