//! Regenerate every exhibit in sequence (Figures 3.2–6.2, Tables 4.1 and
//! 5.1). Honours `SEMCLUSTER_FAST` / `SEMCLUSTER_REPS` /
//! `SEMCLUSTER_JOBS`. Each exhibit is also available as its own binary
//! (`cargo run --release -p semcluster-bench --bin fig5_1` etc.).
//!
//! `--jobs N` fans each exhibit's sweep out over N worker threads (the
//! exhibits themselves still run in sequence, so stdout order is fixed);
//! stdout is byte-identical at any thread count because every sweep
//! assembles its results in submission order and all wall-clock facts go
//! to stderr.

use std::process::Command;
use std::time::Instant;

fn main() {
    let exhibits = [
        "table4_1", "fig3_2", "fig3_3", "fig3_4", "fig5_1", "table5_1", "fig5_2", "fig5_3",
        "fig5_4", "fig5_5", "fig5_6", "fig5_7", "fig5_8", "fig5_9", "fig5_10", "fig5_11",
        "fig5_12", "fig5_13", "fig5_14", "fig6_1", "fig6_2",
    ];
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    // `repro_all --verbose` / `--jobs N` propagate to the child exhibits
    // via the environment, so every configuration prints its response
    // breakdown and every sweep uses the same worker count.
    let verbose = std::env::args().any(|a| a == "--verbose");
    let jobs = semcluster_bench::jobs_from_env();
    let started = Instant::now();
    for exhibit in exhibits {
        let path = dir.join(exhibit);
        let mut cmd = Command::new(&path);
        if verbose {
            cmd.env("SEMCLUSTER_VERBOSE", "1");
        }
        cmd.env("SEMCLUSTER_JOBS", jobs.to_string());
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exhibit}: {e}"));
        assert!(status.success(), "{exhibit} failed");
        println!();
    }
    println!("all exhibits regenerated.");
    let jobs_desc = if jobs == 0 {
        format!("{} (auto)", semcluster::default_parallelism())
    } else {
        jobs.to_string()
    };
    eprintln!(
        "repro_all: {} exhibits in {:.1}s at --jobs {}",
        exhibits.len(),
        started.elapsed().as_secs_f64(),
        jobs_desc,
    );
}
