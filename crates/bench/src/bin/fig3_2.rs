//! Figure 3.2 — OCT tools' read/write ratios, recovered from synthetic
//! traces generated off the per-tool profiles.

use semcluster_analysis::Table;
use semcluster_bench::banner;
use semcluster_sim::SimRng;
use semcluster_workload::{analyze, generate_trace, oct_tools};

fn main() {
    banner("Figure 3.2", "OCT tools' read/write ratio");
    let mut rng = SimRng::seed_from_u64(32);
    let tools = oct_tools();
    let trace = generate_trace(&tools, 40, &mut rng);
    let stats = analyze(&trace);
    let mut table = Table::new(vec!["tool", "profile R/W", "measured R/W"]);
    for t in &tools {
        let s = stats.iter().find(|s| s.tool == t.name).expect("analysed");
        let measured = s.rw_ratio();
        let shown = if measured.is_infinite() {
            "inf (no writes observed)".to_string()
        } else {
            format!("{measured:.2}")
        };
        table.row(vec![
            t.name.to_string(),
            format!("{:.2}", t.rw_ratio),
            shown,
        ]);
    }
    table.print();
    println!("\npaper: VEM 6000; other tools span 0.52 (atlas) to 170 (mosaico).");
}
