//! Figure 3.3 — OCT tools' object I/O rate (logical I/Os per session
//! second), recovered from synthetic traces.

use semcluster_analysis::Table;
use semcluster_bench::banner;
use semcluster_sim::SimRng;
use semcluster_workload::{analyze, generate_trace, oct_tools};

fn main() {
    banner("Figure 3.3", "OCT tools' object I/O rate");
    let mut rng = SimRng::seed_from_u64(33);
    let tools = oct_tools();
    let trace = generate_trace(&tools, 40, &mut rng);
    let stats = analyze(&trace);
    let mut table = Table::new(vec!["tool", "profile I/O per s", "measured I/O per s"]);
    for t in &tools {
        let s = stats.iter().find(|s| s.tool == t.name).expect("analysed");
        table.row(vec![
            t.name.to_string(),
            format!("{:.1}", t.io_rate_per_s),
            format!("{:.1}", s.io_rate()),
        ]);
    }
    table.print();
}
