//! Fault sweep: mean response time versus injected fault intensity,
//! per clustering policy. Shows how the retry/backoff path and graceful
//! clustering degradation absorb disk faults — clustered layouts keep
//! their advantage under mild faults and converge toward the
//! no-clustering baseline as degradation suspends the candidate search.

use semcluster::{clustering_study_base, FaultConfig, SweepJob};
use semcluster_analysis::Table;
use semcluster_bench::experiments::run_jobs;
use semcluster_bench::{banner, FigureOpts};
use semcluster_clustering::ClusteringPolicy;

fn main() {
    banner(
        "Fault sweep",
        "response time vs fault preset, per clustering policy",
    );
    let opts = FigureOpts::from_env();
    let presets = ["none", "smoke", "degraded", "stress"];
    let policies: [(&str, ClusteringPolicy); 3] = [
        ("no clustering", ClusteringPolicy::NoCluster),
        ("unbounded", ClusteringPolicy::NoLimit),
        ("adaptive", ClusteringPolicy::Adaptive),
    ];
    let mut jobs = Vec::new();
    for (label, policy) in &policies {
        for preset in presets {
            let mut cfg = opts.apply(clustering_study_base());
            cfg.clustering = *policy;
            cfg.faults = FaultConfig::preset(preset).expect("preset names are the fixed set above");
            jobs.push(SweepJob::new(
                format!("{label} faults={preset}"),
                cfg,
                opts.reps,
            ));
        }
    }
    let results = run_jobs(&opts, jobs);
    let mut table = Table::new(vec![
        "clustering",
        "none (s)",
        "smoke (s)",
        "degraded (s)",
        "stress (s)",
        "retries@stress",
        "aborts@stress",
    ]);
    for ((label, _), chunk) in policies.iter().zip(results.chunks(presets.len())) {
        let stress = &chunk[presets.len() - 1].reports[0];
        table.row(vec![
            label.to_string(),
            format!("{:.3}", chunk[0].response.mean),
            format!("{:.3}", chunk[1].response.mean),
            format!("{:.3}", chunk[2].response.mean),
            format!("{:.3}", chunk[3].response.mean),
            stress.faults.retries.to_string(),
            stress.faults.txn_aborts.to_string(),
        ]);
    }
    table.print();
    println!("\nexpected: responses rise with fault intensity; retry/backoff absorbs");
    println!("transient errors, and under heavy faults degradation narrows the gap");
    println!("between clustered and unclustered layouts (search is suspended).");
}
