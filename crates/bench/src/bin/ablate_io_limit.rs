//! Ablation: sweep the candidate-search I/O limit from 0 to unbounded —
//! the continuous version of Figures 5.2–5.4's discrete levels.

use semcluster::{clustering_study_base, SweepJob};
use semcluster_analysis::Table;
use semcluster_bench::experiments::run_jobs;
use semcluster_bench::{banner, FigureOpts};
use semcluster_clustering::ClusteringPolicy;
use semcluster_workload::{StructureDensity, WorkloadSpec};

fn main() {
    banner(
        "Ablation",
        "candidate-search I/O limit sweep (med5, rw 5 and 100)",
    );
    let opts = FigureOpts::from_env();
    let limits: [(String, ClusteringPolicy); 7] = [
        ("within-buffer (0)".into(), ClusteringPolicy::WithinBuffer),
        ("1".into(), ClusteringPolicy::IoLimit(1)),
        ("2".into(), ClusteringPolicy::IoLimit(2)),
        ("4".into(), ClusteringPolicy::IoLimit(4)),
        ("8".into(), ClusteringPolicy::IoLimit(8)),
        ("16".into(), ClusteringPolicy::IoLimit(16)),
        ("unbounded".into(), ClusteringPolicy::NoLimit),
    ];
    let rws = [5.0, 100.0];
    let mut jobs = Vec::new();
    for (label, policy) in &limits {
        for rw in rws {
            let mut cfg = opts.apply(clustering_study_base());
            cfg.workload = WorkloadSpec::new(StructureDensity::Med5, rw);
            cfg.clustering = *policy;
            jobs.push(SweepJob::new(
                format!("limit {label} rw={rw}"),
                cfg,
                opts.reps,
            ));
        }
    }
    let results = run_jobs(&opts, jobs);
    let mut table = Table::new(vec!["I/O limit", "rw=5 resp (s)", "rw=100 resp (s)"]);
    for ((label, _), chunk) in limits.iter().zip(results.chunks(rws.len())) {
        table.row(vec![
            label.clone(),
            format!("{:.3}", chunk[0].response.mean),
            format!("{:.3}", chunk[1].response.mean),
        ]);
    }
    table.print();
    println!("\nexpected: a small limit captures nearly all of the benefit — the");
    println!("paper's conclusion that \"a low limit on I/O appears to be acceptable\".");
}
