//! Table 5.1 — read/write-ratio break-even points where clustering
//! without I/O limitation starts beating No_Cluster, per density.

use semcluster_analysis::{BreakEven, Table};
use semcluster_bench::experiments::break_even_for;
use semcluster_bench::{banner, FigureOpts};
use semcluster_workload::StructureDensity;

fn main() {
    banner("Table 5.1", "read/write-ratio break-even points");
    let opts = FigureOpts::from_env();
    let paper = [3.0, 3.6, 4.3];
    let mut table = Table::new(vec!["structure density", "paper", "measured"]);
    for (density, paper_value) in StructureDensity::ALL.into_iter().zip(paper) {
        let measured = match break_even_for(&opts, density) {
            BreakEven::At(x) => format!("{x:.1}"),
            BreakEven::AlwaysNegative => "<1 (clustering always wins)".into(),
            BreakEven::AlwaysPositive => ">10 (clustering never wins)".into(),
        };
        table.row(vec![
            density.label().to_string(),
            format!("{paper_value:.1}"),
            measured,
        ]);
    }
    table.print();
}
