//! Figure 5.13 — prefetching effect under the LRU buffer
//! replacement policy.

use semcluster_bench::experiments::{corner_workloads, prefetch_effect};
use semcluster_bench::{banner, FigureOpts};
use semcluster_buffer::ReplacementPolicy;

fn main() {
    banner(
        "Figure 5.13",
        "prefetching effect under LRU replacement — response (s)",
    );
    let opts = FigureOpts::from_env();
    prefetch_effect(&opts, ReplacementPolicy::Lru, &corner_workloads()).print("response (s)");
}
