//! Figure 5.11 — buffering-effects analysis: the six reported replacement
//! × prefetch combinations across workloads, clustering without limit.

use semcluster_bench::experiments::{buffering_effect, corner_workloads};
use semcluster_bench::{banner, FigureOpts};

fn main() {
    banner("Figure 5.11", "buffering effects — mean response time (s)");
    let opts = FigureOpts::from_env();
    let sweep = buffering_effect(&opts, &corner_workloads());
    sweep.print("response (s)");
    if let (Some(worst), Some(best)) = (
        sweep.get("hi10-100", "LRU_no_p"),
        sweep.get("hi10-100", "C_p_DB"),
    ) {
        println!(
            "\nhi10-100: LRU_no_p / C_p_DB = {:.2}× (paper: ≈2.5× — a 150% improvement)",
            worst.mean / best.mean
        );
    }
}
