//! Extension exhibit: adaptive clustering under the MOSAICO phase cycle.
//!
//! §3.3 shows one application's read/write ratio swinging 0.52 → 170
//! across phases, and §5.1 remarks that selecting the clustering
//! mechanism by observed ratio "gets the best response time of both".
//! This experiment runs that cycle and compares fixed policies with the
//! run-time adaptive policy.

use semcluster::{clustering_study_base, SweepJob};
use semcluster_analysis::Table;
use semcluster_bench::experiments::run_jobs;
use semcluster_bench::{banner, FigureOpts};
use semcluster_clustering::ClusteringPolicy;
use semcluster_workload::{PhaseSchedule, StructureDensity};

fn main() {
    banner(
        "Extension",
        "adaptive clustering across MOSAICO's phases (rw 0.52 → 170)",
    );
    let opts = FigureOpts::from_env();
    let policies = [
        ClusteringPolicy::NoCluster,
        ClusteringPolicy::IoLimit(2),
        ClusteringPolicy::NoLimit,
        ClusteringPolicy::Adaptive,
    ];
    let jobs = policies
        .iter()
        .map(|&policy| {
            let mut cfg = opts.apply(clustering_study_base());
            cfg.clustering = policy;
            cfg.phases = Some(PhaseSchedule::mosaico(StructureDensity::Med5, 100));
            SweepJob::new(policy.to_string(), cfg, opts.reps)
        })
        .collect();
    let results = run_jobs(&opts, jobs);
    let mut table = Table::new(vec!["policy", "response (s)", "search I/Os"]);
    for (policy, result) in policies.iter().zip(&results) {
        let search: f64 = result
            .reports
            .iter()
            .map(|r| r.io.cluster_search_ios as f64)
            .sum::<f64>()
            / result.reports.len() as f64;
        table.row(vec![
            policy.to_string(),
            format!("{:.3}±{:.3}", result.response.mean, result.response.ci95),
            format!("{search:.0}"),
        ]);
    }
    table.print();
    println!("\nexpected: Adaptive tracks the better fixed policy in every phase,");
    println!("spending bounded search I/O in write-heavy phases and unbounded in");
    println!("read-heavy ones.");
}
