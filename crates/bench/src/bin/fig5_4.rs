//! Figure 5.4 — clustering effect under R/W ratio 100, sweeping
//! structure density.

use semcluster_bench::experiments::{clustering_effect, density_workloads};
use semcluster_bench::{banner, FigureOpts};

fn main() {
    banner(
        "Figure 5.4",
        "clustering effect at R/W ratio 100 — mean response time (s)",
    );
    let opts = FigureOpts::from_env();
    clustering_effect(&opts, &density_workloads(100.0)).print("response (s)");
}
