//! Extension exhibit: static (offline) clustering vs structure drift.
//!
//! §2.1: static clustering needs a quiesced system, and a static layout
//! decays as design structures keep changing — the motivation for
//! run-time reclustering. We measure the broken-arc weight of a
//! statically clustered layout as design evolution appends new
//! components, with and without run-time reclustering.

use semcluster_analysis::Table;
use semcluster_bench::banner;
use semcluster_clustering::{
    broken_arc_weight, plan_placement, plan_recluster, static_recluster, AllResident,
    ClusteringPolicy, PlacementTarget, WeightModel,
};
use semcluster_sim::SimRng;
use semcluster_storage::StorageManager;
use semcluster_vdm::{ObjectId, ObjectName, RelKind, SyntheticDbSpec};

fn main() {
    banner("Extension", "static layout drift vs run-time reclustering");
    let (db0, _) = SyntheticDbSpec {
        modules: 40,
        depth: 3,
        fanout: (2, 4),
        seed: 77,
        ..SyntheticDbSpec::default()
    }
    .build();
    let model = WeightModel::no_hints();

    // Start both variants from the same statically clustered layout.
    let mut scattered = StorageManager::new(4096);
    for obj in db0.objects() {
        scattered.append(obj.id, obj.size_bytes()).unwrap();
    }
    let (initial, report) = static_recluster(&db0, &scattered, &model, 0.3);
    println!(
        "offline reorganisation: broken weight {:.0} → {:.0} ({:.0}% repaired)\n",
        report.broken_before,
        report.broken_after,
        report.improvement() * 100.0
    );

    let mut table = Table::new(vec![
        "mutations",
        "static only (broken wt)",
        "with run-time reclustering",
    ]);
    let mut static_db = db0.clone();
    let mut dynamic_db = db0;
    let mut static_store = initial.clone();
    let mut dynamic_store = initial;
    let mut rng = SimRng::seed_from_u64(9);
    let ty_s = static_db.lattice().id_of("layout").unwrap();
    let steps = 6;
    let per_step = 120;
    for step in 0..=steps {
        table.row(vec![
            format!("{}", step * per_step),
            format!(
                "{:.0}",
                broken_arc_weight(&static_db, &static_store, &model)
            ),
            format!(
                "{:.0}",
                broken_arc_weight(&dynamic_db, &dynamic_store, &model)
            ),
        ]);
        if step == steps {
            break;
        }
        for i in 0..per_step {
            let anchor = ObjectId(rng.below(static_db.object_count() as u64) as u32);
            let name = ObjectName::new(format!("d{step}x{i}"), 1, "layout");
            // Static variant: plain append (no run-time clustering).
            let id = static_db.create_object(name.clone(), ty_s, 128).unwrap();
            static_db
                .relate(RelKind::Configuration, anchor, id)
                .unwrap();
            let size = static_db.get(id).unwrap().size_bytes();
            static_store.append(id, size).unwrap();
            // Dynamic variant: clustered placement + reclustering.
            let id2 = dynamic_db.create_object(name, ty_s, 128).unwrap();
            dynamic_db
                .relate(RelKind::Configuration, anchor, id2)
                .unwrap();
            let size2 = dynamic_db.get(id2).unwrap().size_bytes();
            let plan = plan_placement(
                &dynamic_db,
                &dynamic_store,
                &AllResident,
                ClusteringPolicy::NoLimit,
                &model,
                id2,
                size2,
            );
            match plan.target {
                PlacementTarget::Existing(p) => {
                    dynamic_store.place(id2, size2, p).unwrap();
                }
                PlacementTarget::Append => {
                    dynamic_store.append(id2, size2).unwrap();
                }
            }
            if let Some(mv) = plan_recluster(
                &dynamic_db,
                &dynamic_store,
                &AllResident,
                ClusteringPolicy::NoLimit,
                &model,
                anchor,
                1.0,
            ) {
                let _ = dynamic_store.move_object(anchor, mv.to);
            }
        }
    }
    table.print();
    println!("\nexpected: the static-only layout decays steadily; run-time");
    println!("reclustering holds broken weight near the reorganised optimum.");
}
