//! Figure 5.6 — clustering effect under low structure density, sweeping
//! the read/write ratio.

use semcluster_bench::experiments::{clustering_effect, rw_workloads};
use semcluster_bench::{banner, FigureOpts};
use semcluster_workload::StructureDensity;

fn main() {
    banner(
        "Figure 5.6",
        "clustering effect at low density — mean response time (s)",
    );
    let opts = FigureOpts::from_env();
    clustering_effect(&opts, &rw_workloads(StructureDensity::Low3)).print("response (s)");
}
