//! Figure 6.1 — two-level factorial effect analysis of the eight control
//! parameters: |effect| ranking of main effects and two-factor
//! interactions.

use semcluster_analysis::Table;
use semcluster_bench::experiments::{factorial_design, factorial_responses_cached};
use semcluster_bench::{banner, FigureOpts};

fn main() {
    banner(
        "Figure 6.1",
        "two-level factorial effect analysis (2^8 runs)",
    );
    let opts = FigureOpts::from_env();
    let design = factorial_design();
    eprintln!(
        "running {} configurations (cached across 6.1/6.2)…",
        design.runs()
    );
    let responses = factorial_responses_cached(&opts);
    let ranked = design.ranked_effects(&responses, 2);
    let mut table = Table::new(vec!["rank", "factor(s)", "|effect| (s)", "signed"]);
    for (i, e) in ranked.iter().take(15).enumerate() {
        table.row(vec![
            format!("{}", i + 1),
            e.label.clone(),
            format!("{:.4}", e.effect.abs()),
            format!("{:+.4}", e.effect),
        ]);
    }
    table.print();
    println!("\npaper: structure density and buffering policy dominate; page splitting ≈ 0.");
}
