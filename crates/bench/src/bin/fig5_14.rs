//! Figure 5.14 — prefetching effect under the Random buffer
//! replacement policy.

use semcluster_bench::experiments::{corner_workloads, prefetch_effect};
use semcluster_bench::{banner, FigureOpts};
use semcluster_buffer::ReplacementPolicy;

fn main() {
    banner(
        "Figure 5.14",
        "prefetching effect under Random replacement — response (s)",
    );
    let opts = FigureOpts::from_env();
    prefetch_effect(&opts, ReplacementPolicy::Random, &corner_workloads()).print("response (s)");
}
