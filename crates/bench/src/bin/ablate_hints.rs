//! Extension exhibit (\[CHAN89\] study): effectiveness of user hints. A
//! hint matching the application's dominant access pattern should help
//! placement; a wrong hint should hurt it.

use semcluster::{clustering_study_base, SweepJob};
use semcluster_analysis::Table;
use semcluster_bench::experiments::run_jobs;
use semcluster_bench::{banner, FigureOpts};
use semcluster_buffer::AccessHint;
use semcluster_clustering::{ClusteringPolicy, HintPolicy};
use semcluster_workload::{StructureDensity, WorkloadSpec};

fn main() {
    banner(
        "Extension",
        "user-hint effectiveness (configuration-heavy workload)",
    );
    let opts = FigureOpts::from_env();
    let cases: [(&str, HintPolicy, AccessHint); 3] = [
        ("No_hint", HintPolicy::NoHints, AccessHint::None),
        (
            "User_hint (matched: by-configuration)",
            HintPolicy::UserHints,
            AccessHint::ByConfiguration,
        ),
        (
            "User_hint (mismatched: by-version)",
            HintPolicy::UserHints,
            AccessHint::ByVersionHistory,
        ),
    ];
    let jobs = cases
        .iter()
        .map(|&(label, policy, hint)| {
            let mut cfg = opts.apply(clustering_study_base());
            cfg.workload = WorkloadSpec::new(StructureDensity::Med5, 20.0);
            cfg.clustering = ClusteringPolicy::NoLimit;
            cfg.hints = policy;
            cfg.session_hint = hint;
            SweepJob::new(label, cfg, opts.reps)
        })
        .collect();
    let results = run_jobs(&opts, jobs);
    let mut table = Table::new(vec!["hint policy", "response (s)"]);
    for ((label, _, _), result) in cases.iter().zip(&results) {
        table.row(vec![
            label.to_string(),
            format!("{:.3}±{:.3}", result.response.mean, result.response.ci95),
        ]);
    }
    table.print();
    println!("\nthe workload navigates configurations; amplifying configuration arcs");
    println!("in the placement affinity helps, amplifying version arcs misplaces.");
}
