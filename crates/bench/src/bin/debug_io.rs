//! Developer diagnostic: I/O breakdown per policy at a given workload.
use semcluster::{clustering_study_base, run_simulation};
use semcluster_clustering::ClusteringPolicy;
use semcluster_workload::{StructureDensity, WorkloadSpec};

fn main() {
    for rw in [5.0] {
        for p in ClusteringPolicy::PAPER_LEVELS {
            let mut cfg = clustering_study_base();
            cfg.database_bytes = 8 * 1024 * 1024;
            cfg.buffer_pages = 50;
            cfg.workload = WorkloadSpec::new(StructureDensity::Med5, rw);
            cfg.clustering = p;
            let r = run_simulation(cfg);
            println!(
                "rw={rw:<4} {p:<22} resp={:.3} log={:?} rec={}",
                r.mean_response_s, r.log, r.recluster_moves
            );
        }
        println!();
    }
}
