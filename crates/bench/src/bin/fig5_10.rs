//! Figure 5.10 — broken-arc cost of the greedy Linear_Split vs the exact
//! NP_Split partition, on random inheritance-dependency graphs per
//! density class.

use semcluster_analysis::Table;
use semcluster_bench::banner;
use semcluster_bench::experiments::split_cost_gap;

fn main() {
    banner("Figure 5.10", "Linear vs NP split partition cost");
    let rows = split_cost_gap(510, 200);
    let mut table = Table::new(vec![
        "density class",
        "Linear_Split cost",
        "NP_Split cost",
        "gap",
    ]);
    for (label, lin, opt) in rows {
        table.row(vec![
            label,
            format!("{lin:.2}"),
            format!("{opt:.2}"),
            format!("{:.1}%", 100.0 * (lin - opt) / opt.max(1e-9)),
        ]);
    }
    table.print();
    println!("\npaper: the gap is small, and shrinks at low density (few arcs).");
}
