//! Ablation: buffer pool size (Table 4.1 parameter L — the study the
//! paper defers to \[CHAN89\]).

use semcluster::{buffering_study_base, SweepJob};
use semcluster_analysis::Table;
use semcluster_bench::experiments::run_jobs;
use semcluster_bench::{banner, FigureOpts};
use semcluster_buffer::ReplacementPolicy;
use semcluster_workload::{StructureDensity, WorkloadSpec};

fn main() {
    banner(
        "Ablation",
        "buffer pool size under LRU vs context-sensitive (med5-100)",
    );
    let opts = FigureOpts::from_env();
    let frame_levels = [25usize, 50, 100, 200, 400, 800];
    let policies = [ReplacementPolicy::Lru, ReplacementPolicy::ContextSensitive];
    // Row-major grid: one job per (frames, replacement) pair.
    let mut jobs = Vec::new();
    for &frames in &frame_levels {
        for replacement in policies {
            let mut cfg = opts.apply(buffering_study_base());
            cfg.workload = WorkloadSpec::new(StructureDensity::Med5, 100.0);
            cfg.replacement = replacement;
            cfg.buffer_pages = frames;
            jobs.push(SweepJob::new(
                format!("{frames} frames / {replacement:?}"),
                cfg,
                opts.reps,
            ));
        }
    }
    let results = run_jobs(&opts, jobs);
    let mut table = Table::new(vec![
        "frames",
        "LRU resp (s)",
        "Ctx resp (s)",
        "LRU hits",
        "Ctx hits",
    ]);
    for (row, chunk) in results.chunks(policies.len()).enumerate() {
        table.row(vec![
            frame_levels[row].to_string(),
            format!("{:.3}", chunk[0].response.mean),
            format!("{:.3}", chunk[1].response.mean),
            format!("{:.2}", chunk[0].hit_ratio.mean),
            format!("{:.2}", chunk[1].hit_ratio.mean),
        ]);
    }
    table.print();
}
