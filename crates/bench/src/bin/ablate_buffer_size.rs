//! Ablation: buffer pool size (Table 4.1 parameter L — the study the
//! paper defers to \[CHAN89\]).

use semcluster::{buffering_study_base, run_replicated};
use semcluster_analysis::Table;
use semcluster_bench::{banner, FigureOpts};
use semcluster_buffer::ReplacementPolicy;
use semcluster_workload::{StructureDensity, WorkloadSpec};

fn main() {
    banner(
        "Ablation",
        "buffer pool size under LRU vs context-sensitive (med5-100)",
    );
    let opts = FigureOpts::from_env();
    let mut table = Table::new(vec![
        "frames",
        "LRU resp (s)",
        "Ctx resp (s)",
        "LRU hits",
        "Ctx hits",
    ]);
    for frames in [25usize, 50, 100, 200, 400, 800] {
        let mut cells = vec![frames.to_string()];
        let mut hits = Vec::new();
        for replacement in [ReplacementPolicy::Lru, ReplacementPolicy::ContextSensitive] {
            let mut cfg = opts.apply(buffering_study_base());
            cfg.workload = WorkloadSpec::new(StructureDensity::Med5, 100.0);
            cfg.replacement = replacement;
            cfg.buffer_pages = frames;
            let r = run_replicated(&cfg, opts.reps);
            cells.push(format!("{:.3}", r.response.mean));
            hits.push(format!("{:.2}", r.hit_ratio.mean));
        }
        cells.extend(hits);
        table.row(cells);
    }
    table.print();
}
