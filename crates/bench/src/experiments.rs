//! Reusable sweep drivers behind the figure binaries.
//!
//! Every driver builds a flat list of [`SweepJob`]s and hands it to the
//! deterministic parallel executor ([`SweepRunner`]); results come back
//! in submission order, so tables and verbose breakdowns are
//! byte-identical at any `--jobs` level.

use crate::FigureOpts;
use semcluster::{
    buffering_study_base, clustering_study_base, figure_5_11_combos, ReplicatedResult, SimConfig,
    SweepJob, SweepOutcome, SweepRunner,
};
use semcluster_analysis::{find_break_even, BreakEven, Corners, FactorialDesign, Table};
use semcluster_buffer::{PrefetchScope, ReplacementPolicy};
use semcluster_clustering::{
    linear_split, optimal_split, ClusteringPolicy, DependencyGraph, HintPolicy, SplitPolicy,
};
use semcluster_sim::{Estimate, OnlineStats, SimRng};
use semcluster_vdm::ObjectId;
use semcluster_workload::{StructureDensity, WorkloadSpec};

/// A labelled sweep matrix of estimates.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Row labels (typically workloads).
    pub rows: Vec<String>,
    /// Column labels (typically policies).
    pub cols: Vec<String>,
    /// `cells[row][col]`.
    pub cells: Vec<Vec<Estimate>>,
}

impl Sweep {
    /// Render as an ASCII table of `mean ± ci` values.
    pub fn print(&self, value_name: &str) {
        let mut headers = vec![format!("workload \\ {value_name}")];
        headers.extend(self.cols.iter().cloned());
        let mut table = Table::new(headers);
        for (r, row_label) in self.rows.iter().enumerate() {
            let mut cells = vec![row_label.clone()];
            for c in 0..self.cols.len() {
                let e = &self.cells[r][c];
                cells.push(format!("{:.3}±{:.3}", e.mean, e.ci95));
            }
            table.row(cells);
        }
        table.print();
    }

    /// Cell lookup by labels.
    pub fn get(&self, row: &str, col: &str) -> Option<&Estimate> {
        let r = self.rows.iter().position(|x| x == row)?;
        let c = self.cols.iter().position(|x| x == col)?;
        Some(&self.cells[r][c])
    }
}

/// Run a batch of jobs on the shared executor without any output.
pub fn run_sweep(opts: &FigureOpts, jobs: Vec<SweepJob>) -> SweepOutcome {
    SweepRunner::new(opts.jobs).run(jobs)
}

/// Unpack a sweep outcome: under `--verbose` print every run's breakdown
/// (submission order — deterministic at any thread count), report the
/// host-side summary (wall-clock, speedup) to stderr, and panic if any
/// run failed.
pub fn collect(opts: &FigureOpts, outcome: SweepOutcome) -> Vec<ReplicatedResult> {
    if opts.verbose {
        for (_, result) in outcome.ok_results() {
            crate::print_breakdown(&result.reports[0]);
        }
    }
    eprintln!("{}", outcome.summary.render());
    match outcome.into_results() {
        Ok(results) => results,
        Err(e) => panic!("{e}"),
    }
}

/// Run a batch of jobs and collect the results (submission order).
pub fn run_jobs(opts: &FigureOpts, jobs: Vec<SweepJob>) -> Vec<ReplicatedResult> {
    collect(opts, run_sweep(opts, jobs))
}

/// Run a `rows × cols` grid of configurations (row-major submission) and
/// fold each cell's replications with `cell`.
pub fn run_grid(
    opts: &FigureOpts,
    rows: Vec<String>,
    cols: Vec<String>,
    build: impl Fn(usize, usize) -> SimConfig,
    cell: impl Fn(&ReplicatedResult) -> Estimate,
) -> Sweep {
    let mut jobs = Vec::with_capacity(rows.len() * cols.len());
    for (r, row) in rows.iter().enumerate() {
        for (c, col) in cols.iter().enumerate() {
            jobs.push(SweepJob::new(
                format!("{row} / {col}"),
                build(r, c),
                opts.reps,
            ));
        }
    }
    let results = run_jobs(opts, jobs);
    let cells = results
        .chunks(cols.len())
        .map(|row| row.iter().map(&cell).collect())
        .collect();
    Sweep { rows, cols, cells }
}

fn response_cell(result: &ReplicatedResult) -> Estimate {
    result.response.clone()
}

/// The six workloads of Figures 5.1 / 5.9 / 5.11 (densities × rw 5, 100).
pub fn corner_workloads() -> Vec<WorkloadSpec> {
    WorkloadSpec::figure51_corners()
}

/// The density sweep of Figures 5.2–5.4 at a fixed rw ratio.
pub fn density_workloads(rw: f64) -> Vec<WorkloadSpec> {
    StructureDensity::ALL
        .into_iter()
        .map(|d| WorkloadSpec::new(d, rw))
        .collect()
}

/// The rw sweep of Figures 5.6–5.8 at a fixed density.
pub fn rw_workloads(density: StructureDensity) -> Vec<WorkloadSpec> {
    [2.0, 5.0, 10.0, 100.0]
        .into_iter()
        .map(|rw| WorkloadSpec::new(density, rw))
        .collect()
}

/// Clustering-effect sweep (Figures 5.1–5.4, 5.6–5.8): the five paper
/// clustering policies against `workloads`, under the §5.1 buffering
/// baseline (LRU, no prefetch, no splitting).
pub fn clustering_effect(opts: &FigureOpts, workloads: &[WorkloadSpec]) -> Sweep {
    let policies = ClusteringPolicy::PAPER_LEVELS;
    run_grid(
        opts,
        workloads.iter().map(|w| w.label()).collect(),
        policies.iter().map(|p| p.to_string()).collect(),
        |r, c| {
            let mut cfg = opts.apply(clustering_study_base());
            cfg.workload = workloads[r].clone();
            cfg.clustering = policies[c];
            cfg
        },
        response_cell,
    )
}

/// Page-splitting sweep (Figure 5.9): No/Linear/NP splitting under
/// clustering without I/O limitation.
pub fn split_effect(opts: &FigureOpts, workloads: &[WorkloadSpec]) -> Sweep {
    let policies = [
        SplitPolicy::NoSplit,
        SplitPolicy::Linear,
        SplitPolicy::Optimal,
    ];
    run_grid(
        opts,
        workloads.iter().map(|w| w.label()).collect(),
        policies.iter().map(|p| p.to_string()).collect(),
        |r, c| {
            let mut cfg = opts.apply(clustering_study_base());
            cfg.workload = workloads[r].clone();
            cfg.clustering = ClusteringPolicy::NoLimit;
            cfg.split = policies[c];
            cfg
        },
        response_cell,
    )
}

/// Buffering-effect sweep (Figure 5.11): the six reported replacement ×
/// prefetch combinations under the §5.2 clustering baseline.
pub fn buffering_effect(opts: &FigureOpts, workloads: &[WorkloadSpec]) -> Sweep {
    let combos = figure_5_11_combos();
    run_grid(
        opts,
        workloads.iter().map(|w| w.label()).collect(),
        combos.iter().map(|(l, _, _)| l.to_string()).collect(),
        |r, c| {
            let (_, replacement, prefetch) = combos[c];
            let mut cfg = opts.apply(buffering_study_base());
            cfg.workload = workloads[r].clone();
            cfg.replacement = replacement;
            cfg.prefetch = prefetch;
            cfg
        },
        response_cell,
    )
}

/// Prefetch sweep under one replacement policy (Figures 5.12–5.14).
pub fn prefetch_effect(
    opts: &FigureOpts,
    replacement: ReplacementPolicy,
    workloads: &[WorkloadSpec],
) -> Sweep {
    let scopes = [
        PrefetchScope::None,
        PrefetchScope::WithinBuffer,
        PrefetchScope::WithinDatabase,
    ];
    run_grid(
        opts,
        workloads.iter().map(|w| w.label()).collect(),
        scopes.iter().map(|s| s.to_string()).collect(),
        |r, c| {
            let mut cfg = opts.apply(buffering_study_base());
            cfg.workload = workloads[r].clone();
            cfg.replacement = replacement;
            cfg.prefetch = scopes[c];
            cfg
        },
        response_cell,
    )
}

/// Transaction-logging I/O comparison (Figure 5.5): physical log I/Os
/// *per committed write transaction* under no clustering vs clustering
/// without I/O limitation, rw = 5, density sweep. (Per-commit
/// normalisation removes the dilution from each run's random
/// write-transaction count.)
pub fn log_io_effect(opts: &FigureOpts) -> Sweep {
    let policies = [ClusteringPolicy::NoCluster, ClusteringPolicy::NoLimit];
    let workloads = density_workloads(5.0);
    run_grid(
        opts,
        workloads.iter().map(|w| w.label()).collect(),
        policies.iter().map(|p| p.to_string()).collect(),
        |r, c| {
            let mut cfg = opts.apply(clustering_study_base());
            cfg.workload = workloads[r].clone();
            cfg.clustering = policies[c];
            cfg
        },
        |result| {
            let mut stats = OnlineStats::new();
            for report in &result.reports {
                stats.push(report.log_ios as f64 / report.log.commits.max(1) as f64);
            }
            Estimate::from_stats(&stats)
        },
    )
}

/// Break-even read/write ratio (Table 5.1): where `No_Cluster` and
/// clustering-without-limit response times cross for one density.
///
/// The bisection is inherently sequential, but each probe's two
/// configurations (clustered, plain) run as one two-job parallel sweep.
pub fn break_even_for(opts: &FigureOpts, density: StructureDensity) -> BreakEven {
    let runner = SweepRunner::new(opts.jobs);
    let diff = |rw: f64| {
        let mut clustered = opts.apply(clustering_study_base());
        clustered.workload = WorkloadSpec::new(density, rw);
        clustered.clustering = ClusteringPolicy::NoLimit;
        let mut plain = opts.apply(clustering_study_base());
        plain.workload = WorkloadSpec::new(density, rw);
        plain.clustering = ClusteringPolicy::NoCluster;
        let results = runner
            .run(vec![
                SweepJob::of(clustered, opts.reps),
                SweepJob::of(plain, opts.reps),
            ])
            .into_results()
            .expect("break-even probes must succeed");
        results[0].response.mean - results[1].response.mean
    };
    find_break_even(diff, 1.0, 10.0, 7, 4)
}

/// The eight two-level factors of the §6 factorial analysis, with their
/// low/high operating levels applied through a closure.
pub fn factorial_design() -> FactorialDesign {
    FactorialDesign::new(vec![
        "density",
        "rw-ratio",
        "clustering",
        "split",
        "hints",
        "replacement",
        "buffer-size",
        "prefetch",
    ])
}

/// Configure one factorial run from its level vector.
pub fn factorial_config(opts: &FigureOpts, levels: &[bool]) -> SimConfig {
    let mut cfg = opts.apply(SimConfig::default());
    cfg.workload = WorkloadSpec::new(
        if levels[0] {
            StructureDensity::High10
        } else {
            StructureDensity::Low3
        },
        if levels[1] { 100.0 } else { 5.0 },
    );
    cfg.clustering = if levels[2] {
        ClusteringPolicy::NoLimit
    } else {
        ClusteringPolicy::NoCluster
    };
    cfg.split = if levels[3] {
        SplitPolicy::Linear
    } else {
        SplitPolicy::NoSplit
    };
    cfg.hints = if levels[4] {
        HintPolicy::UserHints
    } else {
        HintPolicy::NoHints
    };
    cfg.replacement = if levels[5] {
        ReplacementPolicy::ContextSensitive
    } else {
        ReplacementPolicy::Lru
    };
    cfg.buffer_pages = if levels[6] {
        cfg.buffer_pages * 4
    } else {
        cfg.buffer_pages / 2
    };
    cfg.prefetch = if levels[7] {
        PrefetchScope::WithinDatabase
    } else {
        PrefetchScope::None
    };
    cfg
}

/// Run the full 2^8 factorial; returns the per-run mean responses in run
/// (mask) order.
pub fn factorial_responses(opts: &FigureOpts) -> Vec<f64> {
    let design = factorial_design();
    let jobs: Vec<SweepJob> = (0..design.runs())
        .map(|run| {
            SweepJob::new(
                format!("factorial run {run:03}"),
                factorial_config(opts, &design.levels(run)),
                1,
            )
        })
        .collect();
    run_jobs(opts, jobs)
        .iter()
        .map(|r| r.response.mean)
        .collect()
}

/// Like [`factorial_responses`] but cached on disk (under the temp dir)
/// so Figures 6.1 and 6.2 share one 2^8 sweep. The cache key includes
/// every option that changes the responses (thread count does not — the
/// sweep is deterministic).
pub fn factorial_responses_cached(opts: &FigureOpts) -> Vec<f64> {
    let key = format!(
        "factorial_{}_{}_{}_{}_{}.cache",
        opts.seed, opts.database_bytes, opts.measured_txns, opts.warmup_txns, opts.reps
    );
    let path = std::env::temp_dir().join(format!("semcluster_{key}"));
    if let Ok(text) = std::fs::read_to_string(&path) {
        let parsed: Vec<f64> = text.lines().filter_map(|l| l.trim().parse().ok()).collect();
        if parsed.len() == factorial_design().runs() {
            return parsed;
        }
    }
    let responses = factorial_responses(opts);
    let text: String = responses.iter().map(|v| format!("{v:.9}\n")).collect();
    let _ = std::fs::write(&path, text);
    responses
}

/// The 2×2 interaction corners of factors `i` and `j`, averaging
/// responses over all other factors (standard interaction-plot
/// construction from a full factorial).
pub fn corners_from(design: &FactorialDesign, responses: &[f64], i: usize, j: usize) -> Corners {
    assert_eq!(responses.len(), design.runs());
    let mut sums = [0.0f64; 4];
    let mut counts = [0u32; 4];
    for (run, &y) in responses.iter().enumerate() {
        let a = (run >> i) & 1;
        let b = (run >> j) & 1;
        let idx = a * 2 + b;
        sums[idx] += y;
        counts[idx] += 1;
    }
    Corners {
        ll: sums[0] / counts[0] as f64,
        lh: sums[1] / counts[1] as f64,
        hl: sums[2] / counts[2] as f64,
        hh: sums[3] / counts[3] as f64,
    }
}

/// Random dependency graph for the Figure 5.10 partition-cost study.
pub fn random_dependency_graph(
    rng: &mut SimRng,
    nodes: usize,
    arc_prob: f64,
    size_range: (u32, u32),
) -> DependencyGraph {
    let sizes: Vec<u32> = (0..nodes)
        .map(|_| rng.range_inclusive(size_range.0 as u64, size_range.1 as u64) as u32)
        .collect();
    let mut arcs = Vec::new();
    for a in 0..nodes as u32 {
        for b in (a + 1)..nodes as u32 {
            if rng.chance(arc_prob) {
                arcs.push((a, b, 1.0 + rng.f64() * 9.0));
            }
        }
    }
    arcs.sort_by(|x, y| y.2.partial_cmp(&x.2).expect("finite"));
    DependencyGraph {
        objects: (0..nodes as u32).map(ObjectId).collect(),
        sizes,
        arcs,
    }
}

/// Mean broken-cost gap between the greedy and optimal partitioners
/// (Figure 5.10), per density class: `(class, linear_cost, optimal_cost)`
/// averaged over `samples` random graphs each.
pub fn split_cost_gap(seed: u64, samples: usize) -> Vec<(String, f64, f64)> {
    let mut rng = SimRng::seed_from_u64(seed);
    let classes = [
        ("low-3", 5usize, 0.25),
        ("med-5", 9, 0.35),
        ("high-10", 14, 0.45),
    ];
    let capacity = 4000u32;
    let mut out = Vec::new();
    for (label, nodes, arc_prob) in classes {
        let mut lin_sum = 0.0;
        let mut opt_sum = 0.0;
        let mut n = 0;
        while n < samples {
            let g = random_dependency_graph(&mut rng, nodes, arc_prob, (300, 900));
            let (Ok(lin), Ok(opt)) = (linear_split(&g, capacity), optimal_split(&g, capacity))
            else {
                continue;
            };
            lin_sum += lin.broken_cost;
            opt_sum += opt.broken_cost;
            n += 1;
        }
        out.push((
            label.to_string(),
            lin_sum / samples as f64,
            opt_sum / samples as f64,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> FigureOpts {
        FigureOpts {
            reps: 1,
            database_bytes: 2 * 1024 * 1024,
            measured_txns: 150,
            warmup_txns: 50,
            seed: 1,
            verbose: false,
            jobs: 2,
        }
    }

    #[test]
    fn sweep_lookup_and_print() {
        let opts = tiny_opts();
        let sweep = clustering_effect(&opts, &[WorkloadSpec::new(StructureDensity::Low3, 5.0)]);
        assert_eq!(sweep.rows, vec!["low3-5"]);
        assert_eq!(sweep.cols.len(), 5);
        assert!(sweep.get("low3-5", "No_Cluster").unwrap().mean > 0.0);
        assert!(sweep.get("nope", "No_Cluster").is_none());
        sweep.print("response (s)");
    }

    #[test]
    fn grid_is_thread_count_invariant() {
        let workloads = [WorkloadSpec::new(StructureDensity::Low3, 5.0)];
        let serial = clustering_effect(
            &FigureOpts {
                jobs: 1,
                ..tiny_opts()
            },
            &workloads,
        );
        let parallel = clustering_effect(
            &FigureOpts {
                jobs: 4,
                ..tiny_opts()
            },
            &workloads,
        );
        assert_eq!(serial.rows, parallel.rows);
        assert_eq!(serial.cols, parallel.cols);
        for (a, b) in serial.cells[0].iter().zip(&parallel.cells[0]) {
            assert_eq!(a.mean.to_bits(), b.mean.to_bits());
            assert_eq!(a.ci95.to_bits(), b.ci95.to_bits());
        }
    }

    #[test]
    fn factorial_config_applies_levels() {
        let opts = tiny_opts();
        let hi = factorial_config(&opts, &[true; 8]);
        assert_eq!(hi.workload.label(), "hi10-100");
        assert_eq!(hi.clustering, ClusteringPolicy::NoLimit);
        assert_eq!(hi.replacement, ReplacementPolicy::ContextSensitive);
        let lo = factorial_config(&opts, &[false; 8]);
        assert_eq!(lo.workload.label(), "low3-5");
        assert_eq!(lo.clustering, ClusteringPolicy::NoCluster);
        assert!(lo.buffer_pages < hi.buffer_pages);
    }

    #[test]
    fn corners_average_other_factors() {
        let design = FactorialDesign::new(vec!["A", "B", "C"]);
        // y depends only on A (factor 0).
        let responses: Vec<f64> = (0..8)
            .map(|run| if run & 1 == 1 { 10.0 } else { 2.0 })
            .collect();
        let c = corners_from(&design, &responses, 0, 1);
        assert_eq!(c.ll, 2.0);
        assert_eq!(c.lh, 2.0);
        assert_eq!(c.hl, 10.0);
        assert_eq!(c.hh, 10.0);
    }

    #[test]
    fn optimal_never_beats_linear_backwards() {
        for (label, lin, opt) in split_cost_gap(3, 10) {
            assert!(
                opt <= lin + 1e-9,
                "{label}: optimal {opt} worse than linear {lin}"
            );
        }
    }

    #[test]
    fn workload_families() {
        assert_eq!(corner_workloads().len(), 6);
        assert_eq!(density_workloads(5.0).len(), 3);
        assert_eq!(rw_workloads(StructureDensity::Low3).len(), 4);
    }
}
