//! Criterion micro-benchmarks of the hot substrate operations.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use semcluster_bench::experiments::random_dependency_graph;
use semcluster_buffer::{BufferPool, ReplacementPolicy};
use semcluster_clustering::{
    linear_split, optimal_split, plan_placement, AllResident, ClusteringPolicy, WeightModel,
};
use semcluster_sim::{EventQueue, FcfsServer, SimDuration, SimRng, SimTime, Zipf};
use semcluster_storage::{PageId, StorageManager, DEFAULT_PAGE_BYTES};
use semcluster_vdm::{ObjectId, SyntheticDbSpec};
use semcluster_wal::{LogConfig, LogManager};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("sim/event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime::from_micros((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

fn bench_server(c: &mut Criterion) {
    c.bench_function("sim/fcfs_submit_1k", |b| {
        b.iter(|| {
            let mut s = FcfsServer::new("d");
            let mut t = SimTime::ZERO;
            for i in 0..1000u64 {
                t += SimDuration::from_micros(i % 50);
                black_box(s.submit(t, SimDuration::from_micros(30)));
            }
            black_box(s.jobs())
        })
    });
}

fn bench_zipf(c: &mut Criterion) {
    let z = Zipf::new(10_000, 0.8);
    let mut rng = SimRng::seed_from_u64(1);
    c.bench_function("sim/zipf_sample", |b| {
        b.iter(|| black_box(z.sample(&mut rng)))
    });
}

fn bench_buffer_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer/access_zipf_stream");
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Random,
        ReplacementPolicy::ContextSensitive,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy),
            &policy,
            |b, &policy| {
                let z = Zipf::new(4000, 0.7);
                let mut rng = SimRng::seed_from_u64(3);
                let mut pool = BufferPool::new(512, policy, 7);
                b.iter(|| {
                    let page = PageId(z.sample(&mut rng) as u32);
                    black_box(pool.access(page))
                })
            },
        );
    }
    group.finish();
}

fn bench_splits(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(5);
    let small = random_dependency_graph(&mut rng, 10, 0.4, (200, 500));
    let large = random_dependency_graph(&mut rng, 40, 0.2, (80, 200));
    let mut group = c.benchmark_group("clustering/page_split");
    group.bench_function("linear_10_nodes", |b| {
        b.iter(|| black_box(linear_split(&small, 3000)))
    });
    group.bench_function("optimal_10_nodes", |b| {
        b.iter(|| black_box(optimal_split(&small, 3000)))
    });
    group.bench_function("linear_40_nodes", |b| {
        b.iter(|| black_box(linear_split(&large, 4000)))
    });
    group.bench_function("optimal_40_nodes_heuristic", |b| {
        b.iter(|| black_box(optimal_split(&large, 4000)))
    });
    group.finish();
}

fn bench_placement(c: &mut Criterion) {
    let (db, _) = SyntheticDbSpec {
        modules: 30,
        depth: 3,
        fanout: (3, 6),
        ..SyntheticDbSpec::default()
    }
    .build();
    let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
    for obj in db.objects() {
        store.append(obj.id, obj.size_bytes()).unwrap();
    }
    let model = WeightModel::no_hints();
    let n = db.object_count() as u32;
    let mut i = 0u32;
    c.bench_function("clustering/plan_placement", |b| {
        b.iter(|| {
            i = (i + 1) % n;
            black_box(plan_placement(
                &db,
                &store,
                &AllResident,
                ClusteringPolicy::NoLimit,
                &model,
                ObjectId(i),
                256,
            ))
        })
    });
}

fn bench_log(c: &mut Criterion) {
    c.bench_function("wal/txn_of_8_updates", |b| {
        let mut log = LogManager::new(LogConfig::default());
        b.iter(|| {
            let t = log.begin();
            for p in 0..8u32 {
                black_box(log.log_update(t, PageId(p % 3), 200));
            }
            black_box(log.commit(t))
        })
    });
}

fn bench_db_build(c: &mut Criterion) {
    c.bench_function("vdm/synthetic_build_3k_objects", |b| {
        b.iter(|| {
            let spec = SyntheticDbSpec {
                modules: 10,
                depth: 3,
                fanout: (3, 5),
                ..SyntheticDbSpec::default()
            };
            black_box(spec.build().0.object_count())
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(30);
    targets = bench_event_queue,
    bench_server,
    bench_zipf,
    bench_buffer_policies,
    bench_splits,
    bench_placement,
    bench_log,
    bench_db_build
);
criterion_main!(micro);
