//! Criterion benchmarks of the integrated engine: one small simulation
//! per policy family, plus workload machinery. These double as coarse
//! regression guards on simulation throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use semcluster::{
    run_simulation, run_simulation_observed, run_simulation_with_obs, ObsConfig, SimConfig,
};
use semcluster_buffer::{PrefetchScope, ReplacementPolicy};
use semcluster_clustering::ClusteringPolicy;
use semcluster_obs::{JsonlSink, SharedBuf};
use semcluster_sim::SimRng;
use semcluster_workload::{analyze, generate_trace, oct_tools, StructureDensity};

/// Benchmark under the same counting allocator the CLI registers, so
/// the profile_on/profile_off pair below measures the full production
/// configuration — allocator wrapper included — and not a cheaper one.
#[global_allocator]
static ALLOC: semcluster_obs::CountingAlloc = semcluster_obs::CountingAlloc;

fn tiny(clustering: ClusteringPolicy) -> SimConfig {
    SimConfig {
        database_bytes: 2 * 1024 * 1024,
        buffer_pages: 24,
        warmup_txns: 50,
        measured_txns: 250,
        clustering,
        ..SimConfig::default()
    }
    .with_workload(StructureDensity::Med5, 10.0)
}

fn bench_engine_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/simulation_300txn");
    group.sample_size(10);
    for policy in ClusteringPolicy::PAPER_LEVELS {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy),
            &policy,
            |b, &policy| b.iter(|| black_box(run_simulation(tiny(policy)).mean_response_s)),
        );
    }
    group.finish();
}

fn bench_engine_buffering(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/smart_buffering_300txn");
    group.sample_size(10);
    group.bench_function("ctx_prefetch_db", |b| {
        b.iter(|| {
            let cfg = tiny(ClusteringPolicy::NoLimit)
                .with_replacement(ReplacementPolicy::ContextSensitive)
                .with_prefetch(PrefetchScope::WithinDatabase);
            black_box(run_simulation(cfg).mean_response_s)
        })
    });
    group.finish();
}

/// Observability overhead: the same simulation with the default
/// `NoopSink` (tracing compiled in but disabled) vs a live JSONL sink
/// writing every event to an in-memory buffer. The gap is the full cost
/// of event construction + serialisation; the Noop side measures the
/// `enabled()` guard on the hot path.
fn bench_engine_tracing(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/tracing_300txn");
    group.sample_size(10);
    group.bench_function("trace_off_noop_sink", |b| {
        b.iter(|| {
            let (report, _) =
                run_simulation_with_obs(tiny(ClusteringPolicy::NoLimit), ObsConfig::default());
            black_box(report.mean_response_s)
        })
    });
    group.bench_function("trace_on_jsonl_sink", |b| {
        b.iter(|| {
            let buf = SharedBuf::default();
            let sink = JsonlSink::new(buf.clone());
            let (report, _) = run_simulation_with_obs(
                tiny(ClusteringPolicy::NoLimit),
                ObsConfig::with_sink(Box::new(sink)),
            );
            black_box((report.mean_response_s, buf.bytes().len()))
        })
    });
    group.bench_function("timeline_and_audit_on", |b| {
        b.iter(|| {
            let (report, obs) = run_simulation_observed(
                tiny(ClusteringPolicy::NoLimit),
                ObsConfig::default().timeline(1_000_000).audit(16),
            );
            black_box((
                report.mean_response_s,
                obs.timeline.map(|t| t.len()),
                obs.audits.len(),
            ))
        })
    });
    // The phase profiler rides the same ≤10 % observability overhead
    // budget as the trace pair above: profile_on must stay within that
    // margin of profile_off. Both sides run through run_simulation_observed
    // so the only difference is the profiler itself.
    group.bench_function("profile_off", |b| {
        b.iter(|| {
            let (report, _) =
                run_simulation_observed(tiny(ClusteringPolicy::NoLimit), ObsConfig::default());
            black_box(report.mean_response_s)
        })
    });
    group.bench_function("profile_on", |b| {
        b.iter(|| {
            let (report, obs) = run_simulation_observed(
                tiny(ClusteringPolicy::NoLimit),
                ObsConfig::default().profile(),
            );
            black_box((
                report.mean_response_s,
                obs.profile.map(|p| p.phases().count()),
            ))
        })
    });
    group.finish();
}

fn bench_trace_pipeline(c: &mut Criterion) {
    let tools = oct_tools();
    c.bench_function("workload/trace_generate_analyze_10_invocations", |b| {
        let mut rng = SimRng::seed_from_u64(9);
        b.iter(|| {
            let trace = generate_trace(&tools, 1, &mut rng);
            black_box(analyze(&trace).len())
        })
    });
}

criterion_group!(
    name = engine;
    config = Criterion::default();
    targets = bench_engine_policies, bench_engine_buffering, bench_engine_tracing,
        bench_trace_pipeline
);
criterion_main!(engine);
