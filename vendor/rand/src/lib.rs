//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny API subset it actually uses: [`rngs::SmallRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] sampling methods
//! `gen`, `gen_range` and `gen_bool`. The generator is xoshiro256++ with
//! SplitMix64 state expansion — the same family the real `SmallRng` uses
//! on 64-bit targets — so the statistical quality matches what the
//! simulation kernel expects. Streams are *not* bit-compatible with the
//! upstream crate, only deterministic per seed, which is all the
//! workspace relies on.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling interface (the subset of `rand::Rng` used here).
pub trait Rng {
    /// Next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of `T` from its full range (floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Sample uniformly from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(&mut |n| uniform_below(self, n))
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self.next_u64()) < p
    }
}

/// Types samplable from a raw 64-bit draw (stand-in for the `Standard`
/// distribution).
pub trait Standard {
    /// Map 64 uniform bits onto the type's standard distribution.
    fn sample(bits: u64) -> Self;
}

impl Standard for u64 {
    fn sample(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn sample(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample(bits: u64) -> f64 {
        // 53 high bits → [0, 1) with full double precision.
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample(bits: u64) -> bool {
        bits >> 63 == 1
    }
}

/// Unbiased uniform draw below `n` (rejection sampling against the
/// modulo-bias tail).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty sampling range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Reject draws in the biased tail [limit, 2^64).
    let limit = u64::MAX - u64::MAX % n;
    let mut x = rng.next_u64();
    while x >= limit {
        x = rng.next_u64();
    }
    x % n
}

/// Ranges a generator can sample from (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value; `below` maps `n` to a uniform draw in `[0, n)`.
    fn sample(self, below: &mut dyn FnMut(u64) -> u64) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, below: &mut dyn FnMut(u64) -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + below(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, below: &mut dyn FnMut(u64) -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return below(u64::MAX) as $t; // pragmatically full range
                }
                lo + below(span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(u64, u32, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, below: &mut dyn FnMut(u64) -> u64) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = below(u64::MAX) as f64 / u64::MAX as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ with SplitMix64 seeding — small, fast, deterministic.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_repeat() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(0..7u64);
            assert!(x < 7);
            let y: u32 = rng.gen_range(10u32..=20);
            assert!((10..=20).contains(&y));
            let z: usize = rng.gen_range(0..3usize);
            assert!(z < 3);
            let f: f64 = rng.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn f64_unit_interval_and_mean() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
