//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the proptest API its property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`Just`], [`any`], `prop_oneof!`,
//! `collection::vec`, a small regex-pattern string strategy, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed
//! number of cases drawn from a deterministic per-test stream, and a
//! failing case panics with the ordinary assert message. That keeps the
//! existing property tests meaningful (and reproducible) without the
//! upstream dependency.

use std::ops::{Range, RangeInclusive};

/// Cases generated per property test.
pub const CASES: u64 = 48;

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct GenRng {
    state: u64,
}

impl GenRng {
    /// Stream for case `case` of the test named `name`. Equal inputs give
    /// equal streams on every platform.
    pub fn for_case(name: &str, case: u64) -> GenRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        GenRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling range");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let limit = u64::MAX - u64::MAX % n;
        let mut x = self.next_u64();
        while x >= limit {
            x = self.next_u64();
        }
        x % n
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. The `Value` associated type mirrors proptest's.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut GenRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut GenRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut GenRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Failure type for `Result`-returning property helpers. The shimmed
/// `prop_assert*` macros panic instead of returning this, so it only
/// exists to keep helper signatures compiling.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

/// Result alias used by property helpers.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: Box<dyn Fn(&mut GenRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut GenRng) -> T {
        (self.gen)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut GenRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the branch list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut GenRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Full-range strategy for a type (`any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut GenRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut GenRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut GenRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut GenRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut GenRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut GenRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut GenRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u64, u32, u16, u8, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut GenRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut GenRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident.$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut GenRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ------------------------------------------------ regex-subset strings

/// String strategy from a regex-like pattern. Supports the subset the
/// workspace's tests use: literal characters, `[...]` classes containing
/// literals and `a-z` ranges, and `{m}` / `{m,n}` quantifiers.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut GenRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut GenRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Atom: a class or a literal character.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .expect("unclosed [ in pattern")
                + i;
            let body = &chars[i + 1..close];
            i = close + 1;
            expand_class(body)
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Quantifier: {m} or {m,n}; default exactly one.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed { in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad quantifier"),
                    n.trim().parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let reps = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..reps {
            let k = rng.below(class.len() as u64) as usize;
            out.push(class[k]);
        }
    }
    out
}

fn expand_class(body: &[char]) -> Vec<char> {
    let mut class = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if j + 2 < body.len() && body[j + 1] == '-' {
            let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
            assert!(lo <= hi, "inverted class range");
            for c in lo..=hi {
                class.push(char::from_u32(c).expect("valid class char"));
            }
            j += 3;
        } else {
            class.push(body[j]);
            j += 1;
        }
    }
    assert!(!class.is_empty(), "empty character class");
    class
}

// --------------------------------------------------------- collections

/// Collection strategies.
pub mod collection {
    use super::{GenRng, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies. The `usize`-only
    /// conversions pin untyped integer literals to `usize`, as upstream.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `Vec` strategy: between `len.lo` and `len.hi` values of `element`.
    pub fn vec<E: Strategy>(element: E, len: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<E> {
        element: E,
        len: SizeRange,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn generate(&self, rng: &mut GenRng) -> Vec<E::Value> {
            let span = (self.len.hi - self.len.lo) as u64 + 1;
            let n = self.len.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// -------------------------------------------------------------- macros

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// expands to a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::CASES {
                    let mut prop_rng = $crate::GenRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                    // Bodies may use `?` on TestCaseResult helpers;
                    // prop_assume! skips a case by returning Ok early.
                    // `mut` is needed only when the body mutates a
                    // capture, which depends on the call site.
                    #[allow(unused_mut)]
                    let mut prop_case = || -> $crate::TestCaseResult {
                        { $body }
                        Ok(())
                    };
                    if let Err(e) = prop_case() {
                        panic!("property case {case} failed: {:?}", e);
                    }
                }
            }
        )*
    };
}

/// Assert inside a property test (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// (Inside the per-case closure, skipping == passing.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    /// Re-export of the crate root under the name the macros expect.
    pub use crate as proptest;
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Just, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = GenRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let x = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&x));
            let y = (3usize..=3).generate(&mut rng);
            assert_eq!(y, 3);
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn determinism_per_name_and_case() {
        let mut a = GenRng::for_case("t", 1);
        let mut b = GenRng::for_case("t", 1);
        let mut c = GenRng::for_case("t", 2);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn pattern_strings_match_shape() {
        let mut rng = GenRng::for_case("pat", 0);
        for _ in 0..200 {
            let s = "[A-Za-z][A-Za-z0-9_-]{0,12}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            let t = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&t.len()));
            assert!(t.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn vec_and_tuple_and_oneof() {
        let mut rng = GenRng::for_case("vec", 0);
        let v = collection::vec((0u32..5, any::<bool>()), 2usize..6).generate(&mut rng);
        assert!((2..6).contains(&v.len()));
        let choice = prop_oneof![Just(1u8), Just(2u8)];
        for _ in 0..50 {
            assert!(matches!(choice.generate(&mut rng), 1 | 2));
        }
    }

    proptest! {
        /// The macro itself works end to end.
        #[test]
        fn macro_smoke(x in 0u64..100, flip in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_ne!(x, 13);
            let _ = flip;
            prop_assert_eq!(x + 1, x + 1);
        }
    }
}
