//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the API subset its benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros (including the
//! `name = ...; config = ...; targets = ...` form).
//!
//! There is no statistical analysis or HTML report: each benchmark is
//! calibrated to a short target runtime, then timed over `sample_size`
//! samples, and the per-iteration mean / min / max are printed. That is
//! enough to track the perf trajectory by eye and to keep `cargo bench`
//! compiling and running the real workloads.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Run a parameterised benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier for one parameterisation of a grouped benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify a benchmark by its parameter's display form.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` for the calibrated number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Per-sample target runtime. Short: these are trajectory trackers, not
/// rigorous statistics.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

fn run_bench(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: grow the iteration count until one sample takes long
    // enough to time meaningfully.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 30 {
            break;
        }
        // Aim past the target so the loop settles in a few rounds.
        let grow = if b.elapsed.is_zero() {
            iters * 8
        } else {
            let ratio = TARGET_SAMPLE.as_secs_f64() / b.elapsed.as_secs_f64();
            ((iters as f64 * ratio * 1.2) as u64).max(iters + 1)
        };
        iters = grow.min(1 << 30);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    // Wall-clock timings are host facts, not canonical output: keep
    // them off stdout so bench invocations obey the same stdout
    // determinism contract as the simulator CLI (DESIGN.md §10).
    eprintln!(
        "{id:<55} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        sample_size,
        iters
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Group benchmark functions, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial/add", |b| b.iter(|| black_box(2u64) + 2));
        let mut group = c.benchmark_group("trivial/group");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
    }

    criterion_group!(smoke, trivial);

    #[test]
    fn harness_runs() {
        smoke();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.5e-9), "2.50 ns");
        assert_eq!(fmt_time(3.0e-5), "30.00 us");
        assert_eq!(fmt_time(1.5e-2), "15.00 ms");
        assert_eq!(fmt_time(2.0), "2.000 s");
    }
}
