//! Umbrella test/example package for the semcluster workspace.
